// Package extasy implements an ExTASY-style coupled simulation-analysis
// driver (Balasubramanian et al. [8], the project that motivated the
// Ensemble Toolkit): advanced-sampling campaigns that alternate an
// ensemble of MD engines with a collective analysis — either
// diffusion-map-directed MD (Gromacs + LSDMap) or CoCo-directed MD
// (Amber + CoCo) — expressed as a SAL pattern over the toolkit. Campaigns
// are described by a JSON config mirroring ExTASY's workload/resource
// config split.
package extasy

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"entk/internal/core"
	"entk/internal/linalg"
	"entk/internal/md"
	"entk/internal/vclock"
)

// Workflow selects the simulation/analysis pairing.
type Workflow string

const (
	// CoCoAmber is the Amber + CoCo pairing (DM-d-MD's sibling used in
	// the paper's Figures 7-9).
	CoCoAmber Workflow = "coco-amber"
	// DMdMD is the Gromacs + LSDMap pairing (Figure 4).
	DMdMD Workflow = "dm-d-md"
)

// WorkloadConfig mirrors ExTASY's workload description.
type WorkloadConfig struct {
	Workflow    Workflow `json:"workflow"`
	Simulations int      `json:"simulations"`
	Iterations  int      `json:"iterations"`
	PsPerIter   float64  `json:"ps_per_iter"`
	Frames      int      `json:"frames"`
	TempK       float64  `json:"temp_k"`
	Seed        int64    `json:"seed"`
}

// ResourceConfig mirrors ExTASY's resource description.
type ResourceConfig struct {
	Resource    string `json:"resource"`
	Cores       int    `json:"cores"`
	WalltimeMin int    `json:"walltime_min"`
}

// Config is a full campaign description.
type Config struct {
	Workload WorkloadConfig `json:"workload"`
	Resource ResourceConfig `json:"resource"`
}

// ParseConfig reads a campaign description from JSON.
func ParseConfig(raw []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(raw, &c); err != nil {
		return nil, fmt.Errorf("extasy: parsing config: %w", err)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

func (c *Config) validate() error {
	w, r := &c.Workload, &c.Resource
	if w.Workflow != CoCoAmber && w.Workflow != DMdMD {
		return fmt.Errorf("extasy: unknown workflow %q", w.Workflow)
	}
	if w.Simulations < 1 || w.Iterations < 1 {
		return fmt.Errorf("extasy: need >=1 simulations and iterations")
	}
	if r.Resource == "" || r.Cores < 1 {
		return fmt.Errorf("extasy: resource config incomplete")
	}
	return nil
}

// withDefaults fills optional workload fields.
func (c *Config) withDefaults() Config {
	out := *c
	if out.Workload.PsPerIter == 0 {
		out.Workload.PsPerIter = 0.6
	}
	if out.Workload.Frames == 0 {
		out.Workload.Frames = 200
	}
	if out.Workload.TempK == 0 {
		out.Workload.TempK = 300
	}
	if out.Resource.WalltimeMin == 0 {
		out.Resource.WalltimeMin = 24 * 60
	}
	return out
}

// Result carries the campaign outcome.
type Result struct {
	// Report is the toolkit's TTC decomposition.
	Report *core.Report
	// BasinLeft/BasinRight are the final sampling fractions of the two
	// free-energy basins.
	BasinLeft, BasinRight float64
	// FramesSampled is the total number of trajectory frames produced.
	FramesSampled int
	// AnalysisOutputs counts analysis passes that produced new restart
	// points.
	AnalysisOutputs int
}

// Run executes the campaign. Must be called inside clock.Run.
func Run(clock vclock.Clock, cfg *Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	full := cfg.withDefaults()
	w, rc := full.Workload, full.Resource
	sys := md.AlanineDipeptide

	h, err := core.NewResourceHandle(rc.Resource, rc.Cores,
		time.Duration(rc.WalltimeMin)*time.Minute, core.Config{Clock: clock})
	if err != nil {
		return nil, err
	}

	var mu sync.Mutex
	starts := make([][]float64, w.Simulations)
	for i := range starts {
		starts[i] = make([]float64, sys.Dim)
		starts[i][0] = -1
	}
	var pooled []*linalg.Matrix
	res := &Result{}

	simName, anaName := "md.amber", "ana.coco"
	if w.Workflow == DMdMD {
		simName, anaName = "md.gromacs", "ana.lsdmap"
	}

	pattern := &core.SimulationAnalysisLoop{
		Iterations:  w.Iterations,
		Simulations: w.Simulations,
		Analyses:    1,
		SimulationKernel: func(iter, inst int) *core.Kernel {
			return &core.Kernel{
				Name:   simName,
				Params: map[string]float64{"atoms": float64(sys.Atoms), "ps": w.PsPerIter},
				Work: func() error {
					mu.Lock()
					start := append([]float64(nil), starts[inst-1]...)
					mu.Unlock()
					traj, err := md.Trajectory(sys, start, w.Frames, w.TempK,
						w.Seed+int64(iter*10000+inst))
					if err != nil {
						return err
					}
					mu.Lock()
					pooled = append(pooled, traj)
					mu.Unlock()
					return nil
				},
			}
		},
		AnalysisKernel: func(iter, inst int) *core.Kernel {
			params := map[string]float64{"sims": float64(w.Simulations)}
			if anaName == "ana.lsdmap" {
				params = map[string]float64{"points": float64(w.Simulations * w.Frames / 10)}
			}
			return &core.Kernel{
				Name:   anaName,
				Params: params,
				Work: func() error {
					mu.Lock()
					defer mu.Unlock()
					all, err := md.Concat(pooled)
					if err != nil {
						return err
					}
					next, err := analyse(w.Workflow, all, w.Simulations)
					if err != nil {
						return err
					}
					copy(starts, next)
					res.AnalysisOutputs++
					return nil
				},
			}
		},
	}

	rep, err := h.Execute(pattern)
	if err != nil {
		return nil, err
	}
	res.Report = rep

	mu.Lock()
	defer mu.Unlock()
	all, err := md.Concat(pooled)
	if err != nil {
		return nil, err
	}
	res.FramesSampled = all.Rows
	res.BasinLeft, res.BasinRight = md.BasinFractions(all)
	return res, nil
}

// analyse picks the next iteration's start points with the workflow's
// analysis algorithm: CoCo extends PCA extremes; DM-d-MD seeds from the
// spread of the diffusion embedding.
func analyse(w Workflow, all *linalg.Matrix, n int) ([][]float64, error) {
	if w == CoCoAmber {
		res, err := md.CoCo(all, 2, n)
		if err != nil {
			return nil, err
		}
		return res.StartPoints[:n], nil
	}
	// DM-d-MD: subsample, embed with LSDMap, and restart from the points
	// with extreme first diffusion coordinates (the slowest collective
	// mode), alternating both ends.
	sub, err := md.Subsample(all, maxInt(1, all.Rows/200))
	if err != nil {
		return nil, err
	}
	emb, err := md.LSDMap(sub, 1.0, 1)
	if err != nil {
		return nil, err
	}
	idx := make([]int, sub.Rows)
	for i := range idx {
		idx[i] = i
	}
	// Sort indices by the first diffusion coordinate.
	for i := 1; i < len(idx); i++ {
		for k := i; k > 0 && emb.Coords.At(idx[k], 0) < emb.Coords.At(idx[k-1], 0); k-- {
			idx[k], idx[k-1] = idx[k-1], idx[k]
		}
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		var pick int
		if i%2 == 0 {
			pick = idx[i/2%len(idx)] // low end
		} else {
			pick = idx[len(idx)-1-i/2%len(idx)] // high end
		}
		out[i] = append([]float64(nil), sub.Row(pick)...)
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
