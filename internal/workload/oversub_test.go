package workload

import (
	"reflect"
	"testing"

	"entk/internal/vclock"
)

// TestStress100kOversubSweep runs the full oversubscribed campaign —
// 159744 tasks, peak demand 1.375x the machine — and verifies its
// looser golden checks: the multi-wave open item from the ROADMAP.
func TestStress100kOversubSweep(t *testing.T) {
	skip100k(t)
	res, err := Stress100kOversub(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckOversub(); err != nil {
		t.Errorf("%v\n%s", err, res.Table())
	}
}

// TestStress100kOversubEngineParity asserts the oversubscribed
// campaign's simulated columns are byte-identical across vclock engines
// — contention for cores across waves must still be a deterministic
// simulation.
func TestStress100kOversubEngineParity(t *testing.T) {
	skip100k(t)
	a, err := Stress100kOversubOn(nil, vclock.EngineHandoff)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stress100kOversubOn(nil, vclock.EngineRef)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.SimColumns(), b.SimColumns()) {
		t.Errorf("oversub campaign sim columns diverge across engines:\nhandoff:\n%s\nref:\n%s",
			a.Table(), b.Table())
	}
}

// TestStressOversubSmoke keeps the scaled-down oversubscribed campaign
// (1.375x a 1024-core sim.stress8k pilot) in every tier, including
// -short and -race, on both engines.
func TestStressOversubSmoke(t *testing.T) {
	for _, eng := range []vclock.Engine{vclock.EngineHandoff, vclock.EngineRef} {
		res, err := stressOversubSmokeOn(eng)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckOversub(); err != nil {
			t.Errorf("engine %v: %v\n%s", eng, err, res.Table())
		}
	}
}
