package workload

import (
	"fmt"
	"math"
	"time"

	"entk/internal/cluster"
	"entk/internal/core"
	"entk/internal/pilot"
	"entk/internal/stats"
	"entk/internal/vclock"
)

// The stress tier pushes the toolkit past the paper's largest experiments
// (Figure 8 stops at 4096 tasks): 10k-member ensembles on a synthetic
// 8192-core machine (sim.stress8k). These sweeps are the workload behind
// the indexed agent scheduler — the seed's rescan scheduler made them the
// slowest runs in the tree — and double as correctness checks that the
// runtime keeps exact accounting when the workload no longer fits the
// pilot in one wave. Wall-clock throughput is reported alongside the
// simulated quantities so the perf trajectory is measurable (see
// cmd/entk-bench -stress and BENCH_PR1.json).

// StressMachine is the stress tier's resource label.
const StressMachine = "sim.stress8k"

// StressCores is the pilot size used by the stress tier.
const StressCores = 8192

// The unit-throughput workload: the single configuration measured by
// BenchmarkPilotUnitThroughput and recorded in BENCH_PR<N>.json, defined
// once here so the benchmark and entk-bench cannot drift apart.
const (
	// ThroughputUnits is the workload's ensemble width.
	ThroughputUnits = 512
	// ThroughputCores is the pilot size.
	ThroughputCores = 256
)

// PilotThroughput runs the unit-throughput workload once: ThroughputUnits
// one-stage pipelines of one-second sleeps through a ThroughputCores-core
// Stampede pilot, on the indexed (rescan=false) or reference scheduler.
func PilotThroughput(rescan bool) error {
	return PilotThroughputOn(rescan, DefaultEngine)
}

// PilotThroughputOn is PilotThroughput on an explicit vclock engine, the
// unit of measurement behind the engine × scheduler throughput matrix in
// BENCH_PR<N>.json.
func PilotThroughputOn(rescan bool, eng vclock.Engine) error {
	_, err := runThroughputWorkload(rescan, eng)
	return err
}

// runThroughputWorkload executes the unit-throughput workload and
// returns its finished handle (the session behind it stays queryable,
// which is how ProfileTrace dumps the run's events). This is the single
// definition of the workload, so the benchmark, entk-bench, and the
// trace dump cannot drift apart.
func runThroughputWorkload(rescan bool, eng vclock.Engine) (*core.ResourceHandle, error) {
	v := vclock.NewVirtualEngine(eng)
	rcfg := pilot.DefaultConfig()
	rcfg.Rescan = rescan
	rcfg.ProfLayout = DefaultProfLayout
	rcfg.PendingRef = DefaultPendingRef
	h, err := core.NewResourceHandle("xsede.stampede", ThroughputCores, 1000*time.Hour,
		core.Config{Clock: v, Exec: DefaultExec, Runtime: rcfg})
	if err != nil {
		return nil, err
	}
	// One kernel instance for every task: bind never mutates the kernel,
	// and sharing keeps the per-task allocation off the measured path.
	kernel := &core.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 1}}
	var runErr error
	v.Run(func() {
		_, runErr = h.Execute(&core.EnsembleOfPipelines{
			Pipelines: ThroughputUnits,
			Stages:    1,
			StageKernel: func(int, int) *core.Kernel {
				return kernel
			},
		})
	})
	if runErr != nil {
		return nil, runErr
	}
	return h, nil
}

// Defaults of the stress sweeps.
var (
	// StressEESizes are EE ensemble sizes: replicas = cores up to the
	// full machine, then an oversubscribed 10240-replica point that must
	// run in two waves.
	StressEESizes = []int{1280, 2560, 5120, 8192, 10240}
	// StressEoPSizes are EoP ensemble widths, up to 10240 pipelines.
	StressEoPSizes = []int{2560, 5120, 10240}
	// stressEoPStages is the pipeline depth of the EoP stress sweep.
	stressEoPStages = 2
	// stressEoPSeconds is the per-task runtime of the EoP stress sweep.
	stressEoPSeconds = 30.0
)

// StressEEPoint is one EE stress configuration.
type StressEEPoint struct {
	Replicas    int
	Cores       int
	SimSec      float64
	ExchangeSec float64
	TTCSec      float64
	WallMS      float64 // real time spent simulating this point
}

// StressEEResult holds the EE weak-scaling stress sweep.
type StressEEResult struct {
	Rows []StressEEPoint
}

// StressEE runs the EE weak-scaling stress sweep: replicas = cores up to
// the whole 8192-core machine, plus a final oversubscribed point with
// more replicas than cores — the pilot capability (decoupling workload
// size from resource size) at 10k scale.
func StressEE(sizes []int) (*StressEEResult, error) {
	return StressEEOn(sizes, DefaultEngine)
}

// StressEEOn is StressEE on an explicit vclock engine.
func StressEEOn(sizes []int, eng vclock.Engine) (*StressEEResult, error) {
	if sizes == nil {
		sizes = StressEESizes
	}
	res := &StressEEResult{}
	for _, n := range sizes {
		cores := n
		if cores > StressCores {
			cores = StressCores
		}
		// Shared kernel instances (bind never mutates them): at 10k scale
		// the per-task kernel+params allocation is measurable GC pressure.
		simKernel := &core.Kernel{
			Name:   "md.amber",
			Params: map[string]float64{"atoms": alanineAtoms, "ps": eePS},
		}
		exchKernel := &core.Kernel{
			Name:   "md.remd_exchange",
			Params: map[string]float64{"replicas": float64(n)},
		}
		t0 := time.Now()
		rep, err := runOnFreshClockEngine(StressMachine, cores, eng, func() core.Pattern {
			return &core.EnsembleExchange{
				Replicas: n,
				Cycles:   1,
				SimulationKernel: func(cycle, r int) *core.Kernel {
					return simKernel
				},
				ExchangeKernel: func(cycle int) *core.Kernel {
					return exchKernel
				},
			}
		})
		if err != nil {
			return nil, fmt.Errorf("stress ee n=%d: %w", n, err)
		}
		res.Rows = append(res.Rows, StressEEPoint{
			Replicas:    n,
			Cores:       cores,
			SimSec:      rep.Phase("simulation").Span.Seconds(),
			ExchangeSec: rep.Phase("exchange").Span.Seconds(),
			TTCSec:      rep.TTC.Seconds(),
			WallMS:      float64(time.Since(t0)) / float64(time.Millisecond),
		})
	}
	return res, nil
}

// Table renders the sweep.
func (r *StressEEResult) Table() string {
	headers := []string{"replicas", "cores", "sim_s", "exchange_s", "ttc_s", "wall_ms"}
	var rows [][]string
	for _, w := range r.Rows {
		rows = append(rows, []string{
			di(w.Replicas), di(w.Cores), f1(w.SimSec), f2(w.ExchangeSec), f1(w.TTCSec), f1(w.WallMS),
		})
	}
	return table(headers, rows)
}

// Check asserts the stress-tier shape: over the weak-scaling prefix
// (replicas = cores) the simulation span stays flat while the exchange
// grows linearly with replicas (Figure 6's behaviour, extended to 8192);
// the oversubscribed tail point must take an extra wave — between 1.5x
// and 3x the weak-prefix simulation span — and still complete exactly.
func (r *StressEEResult) Check() error {
	var weakSim, reps, exch []float64
	var over []StressEEPoint
	for _, w := range r.Rows {
		reps = append(reps, float64(w.Replicas))
		exch = append(exch, w.ExchangeSec)
		if w.Replicas == w.Cores {
			weakSim = append(weakSim, w.SimSec)
		} else {
			over = append(over, w)
		}
	}
	if len(weakSim) < 2 {
		return fmt.Errorf("stress ee: need at least two weak-scaling rows, got %d", len(weakSim))
	}
	if spread, err := stats.RelSpread(weakSim); err != nil || spread > 0.30 {
		return fmt.Errorf("stress ee: weak-prefix simulation time not flat: spread=%.3f err=%v", spread, err)
	}
	slope, _, r2, err := stats.LinearFit(reps, exch)
	if err != nil {
		return err
	}
	if slope <= 0 || r2 < 0.99 {
		return fmt.Errorf("stress ee: exchange not linear in replicas (slope=%.5f r2=%.4f)", slope, r2)
	}
	base := stats.Mean(weakSim)
	for _, w := range over {
		waves := float64((w.Replicas + w.Cores - 1) / w.Cores)
		if w.SimSec < (waves-0.5)*base || w.SimSec > (waves+1.0)*base {
			return fmt.Errorf("stress ee: oversubscribed %d-replica sim span %.1fs, want ~%.0f waves of %.1fs",
				w.Replicas, w.SimSec, waves, base)
		}
	}
	return nil
}

// StressEoPPoint is one EoP stress configuration.
type StressEoPPoint struct {
	Pipelines       int
	Stages          int
	Tasks           int
	TTCSec          float64
	ExecSec         float64
	PatternOvhSec   float64
	WallMS          float64
	UnitsPerSecWall float64 // simulated units per wall-clock second
}

// StressEoPResult holds the EoP stress sweep.
type StressEoPResult struct {
	Rows []StressEoPPoint
}

// StressEoP runs the EoP stress sweep: up to 10240 two-stage pipelines on
// the 8192-core machine, submitted phase-batched (BulkStages) — each
// stage is one bulk submission of up to 10240 units, the hardest single
// event the agent scheduler sees anywhere in the tree.
func StressEoP(sizes []int) (*StressEoPResult, error) {
	return StressEoPOn(sizes, DefaultEngine)
}

// StressEoPOn is StressEoP on an explicit vclock engine.
func StressEoPOn(sizes []int, eng vclock.Engine) (*StressEoPResult, error) {
	if sizes == nil {
		sizes = StressEoPSizes
	}
	res := &StressEoPResult{}
	for _, n := range sizes {
		// One kernel for all tasks (bind never mutates it): see StressEE.
		kernel := &core.Kernel{
			Name:   "misc.sleep",
			Params: map[string]float64{"seconds": stressEoPSeconds},
		}
		t0 := time.Now()
		rep, err := runOnFreshClockEngine(StressMachine, StressCores, eng, func() core.Pattern {
			return &core.EnsembleOfPipelines{
				Pipelines:  n,
				Stages:     stressEoPStages,
				BulkStages: true,
				StageKernel: func(stage, pipe int) *core.Kernel {
					return kernel
				},
			}
		})
		if err != nil {
			return nil, fmt.Errorf("stress eop n=%d: %w", n, err)
		}
		wall := time.Since(t0)
		res.Rows = append(res.Rows, StressEoPPoint{
			Pipelines:       n,
			Stages:          stressEoPStages,
			Tasks:           rep.Tasks,
			TTCSec:          rep.TTC.Seconds(),
			ExecSec:         rep.ExecTime().Seconds(),
			PatternOvhSec:   rep.PatternOverhead.Seconds(),
			WallMS:          float64(wall) / float64(time.Millisecond),
			UnitsPerSecWall: float64(rep.Tasks) / wall.Seconds(),
		})
	}
	return res, nil
}

// Table renders the sweep.
func (r *StressEoPResult) Table() string {
	headers := []string{"pipelines", "stages", "tasks", "ttc_s", "exec_s", "pattern_ovh_s", "wall_ms", "units/s(wall)"}
	var rows [][]string
	for _, w := range r.Rows {
		rows = append(rows, []string{
			di(w.Pipelines), di(w.Stages), di(w.Tasks),
			f1(w.TTCSec), f1(w.ExecSec), f1(w.PatternOvhSec), f1(w.WallMS), f1(w.UnitsPerSecWall),
		})
	}
	return table(headers, rows)
}

// ---------------------------------------------------------------------------
// 100k tier

// The 100k tier is the columnar profiler's payoff workload: a 10x step
// past the 10k tier, opened by cutting the profiler's per-event GC-scanned
// footprint from two string headers (~40 B) to a 16-byte pointer-free
// record. Tasks are bulk-submitted single-stage ensembles on a synthetic
// 65536-core machine, and each row records the full TTC decomposition so
// the tier's golden checks can pin every component, not just throughput.

// Stress100kMachine is the 100k tier's resource label.
const Stress100kMachine = "sim.stress64k"

// Stress100kCores is the pilot size used by the 100k tier.
const Stress100kCores = 65536

var (
	// Stress100kSizes are the tier's ensemble widths (single-stage, so
	// tasks = pipelines): half machine, full machine, and the
	// oversubscribed 102400-task point that must run in two waves.
	Stress100kSizes = []int{32768, 65536, 102400}
	// stress100kSeconds is the per-task runtime of the 100k tier.
	stress100kSeconds = 30.0
)

// Stress100kPoint is one 100k-tier configuration with its full TTC
// decomposition.
type Stress100kPoint struct {
	Pipelines       int
	Tasks           int
	TTCSec          float64
	ExecSec         float64
	PatternOvhSec   float64
	QueueWaitSec    float64
	AgentStartupSec float64
	CoreOvhSec      float64
	WallMS          float64
	UnitsPerSecWall float64
}

// Stress100kResult holds the 100k-task stress sweep.
type Stress100kResult struct {
	Rows []Stress100kPoint
}

// Stress100k runs the 100k-task stress sweep on the default engine.
func Stress100k(sizes []int) (*Stress100kResult, error) {
	return Stress100kOn(sizes, DefaultEngine)
}

// Stress100kOn is Stress100k on an explicit vclock engine.
func Stress100kOn(sizes []int, eng vclock.Engine) (*Stress100kResult, error) {
	if sizes == nil {
		sizes = Stress100kSizes
	}
	res := &Stress100kResult{}
	for _, n := range sizes {
		// One kernel for all tasks (bind never mutates it): see StressEE.
		kernel := &core.Kernel{
			Name:   "misc.sleep",
			Params: map[string]float64{"seconds": stress100kSeconds},
		}
		t0 := time.Now()
		rep, err := runOnFreshClockEngine(Stress100kMachine, Stress100kCores, eng, func() core.Pattern {
			return &core.EnsembleOfPipelines{
				Pipelines:  n,
				Stages:     1,
				BulkStages: true,
				StageKernel: func(stage, pipe int) *core.Kernel {
					return kernel
				},
			}
		})
		if err != nil {
			return nil, fmt.Errorf("stress 100k n=%d: %w", n, err)
		}
		wall := time.Since(t0)
		res.Rows = append(res.Rows, Stress100kPoint{
			Pipelines:       n,
			Tasks:           rep.Tasks,
			TTCSec:          rep.TTC.Seconds(),
			ExecSec:         rep.ExecTime().Seconds(),
			PatternOvhSec:   rep.PatternOverhead.Seconds(),
			QueueWaitSec:    rep.QueueWait.Seconds(),
			AgentStartupSec: rep.AgentStartup.Seconds(),
			CoreOvhSec:      rep.CoreOverhead.Seconds(),
			WallMS:          float64(wall) / float64(time.Millisecond),
			UnitsPerSecWall: float64(rep.Tasks) / wall.Seconds(),
		})
	}
	return res, nil
}

// Table renders the sweep.
func (r *Stress100kResult) Table() string {
	headers := []string{"pipelines", "tasks", "ttc_s", "exec_s", "pattern_ovh_s",
		"queue_wait_s", "agent_boot_s", "core_ovh_s", "wall_ms", "units/s(wall)"}
	var rows [][]string
	for _, w := range r.Rows {
		rows = append(rows, []string{
			di(w.Pipelines), di(w.Tasks), f1(w.TTCSec), f1(w.ExecSec), f1(w.PatternOvhSec),
			f1(w.QueueWaitSec), f1(w.AgentStartupSec), f1(w.CoreOvhSec), f1(w.WallMS), f1(w.UnitsPerSecWall),
		})
	}
	return table(headers, rows)
}

// Check asserts the 100k tier's TTC-decomposition golden shapes:
//
//   - exact accounting: every task ran, no retries, no losses;
//   - the pattern overhead grows with the task count and is exactly the
//     client-side submission cost of every unit (tasks x UMSubmitPerUnit);
//   - the queue wait is dominated by the per-node backfill component of
//     the queue model (a 4096-node request waits on the whole machine
//     draining, not on the fixed base);
//   - the execution span is the expected number of waves of the per-task
//     runtime plus bounded launcher stagger;
//   - TTC (measured from pattern start, pilot already active) covers
//     execution and pattern overhead.
func (r *Stress100kResult) Check() error {
	if len(r.Rows) == 0 {
		return fmt.Errorf("stress 100k: no rows")
	}
	m := cluster.Stress64k
	perUnit := pilot.DefaultConfig().UMSubmitPerUnit.Seconds()
	nodes := m.NodesFor(Stress100kCores)
	baseWait := m.QueueWaitBase.Seconds()
	perNodeWait := float64(nodes) * m.QueueWaitPerNode.Seconds()
	prevOvh := 0.0
	for _, w := range r.Rows {
		if w.Tasks != w.Pipelines {
			return fmt.Errorf("stress 100k: %d pipelines produced %d tasks", w.Pipelines, w.Tasks)
		}
		wantOvh := float64(w.Tasks) * perUnit
		if math.Abs(w.PatternOvhSec-wantOvh) > 1e-6*wantOvh+1e-9 {
			return fmt.Errorf("stress 100k: %d tasks pattern overhead %.3fs, want exactly %.3fs",
				w.Tasks, w.PatternOvhSec, wantOvh)
		}
		if w.PatternOvhSec <= prevOvh {
			return fmt.Errorf("stress 100k: pattern overhead not growing with task count (%.3fs after %.3fs)",
				w.PatternOvhSec, prevOvh)
		}
		prevOvh = w.PatternOvhSec
		// Queue wait: the model's full delay plus at most 1s of control
		// latency (SAGA round trips), with the per-node component — the
		// whole-machine backfill wait — dominating.
		if w.QueueWaitSec < baseWait+perNodeWait || w.QueueWaitSec > baseWait+perNodeWait+1 {
			return fmt.Errorf("stress 100k: queue wait %.1fs, want ~%.1fs (base %.0fs + %d nodes)",
				w.QueueWaitSec, baseWait+perNodeWait, baseWait, nodes)
		}
		if perNodeWait < 0.9*w.QueueWaitSec {
			return fmt.Errorf("stress 100k: per-node wait %.1fs not dominating queue wait %.1fs",
				perNodeWait, w.QueueWaitSec)
		}
		waves := float64((w.Pipelines + Stress100kCores - 1) / Stress100kCores)
		wantExec := waves * stress100kSeconds
		if w.ExecSec < wantExec || w.ExecSec > wantExec+5 {
			return fmt.Errorf("stress 100k: %d tasks exec %.1fs, want ~%.1fs (%v waves)",
				w.Tasks, w.ExecSec, wantExec, waves)
		}
		if w.TTCSec < w.ExecSec+w.PatternOvhSec {
			return fmt.Errorf("stress 100k: TTC %.1fs < exec %.1fs + pattern overhead %.1fs",
				w.TTCSec, w.ExecSec, w.PatternOvhSec)
		}
	}
	return nil
}

// Stress1MSize is the 1M-task tier's ensemble width: a 10x step past
// the 100k tier on the same sim.stress64k machine (16 full scheduling
// waves). Since the segmented pending queue removed the O(pending)
// scheduling-pass collapse, the tier runs unguarded in the benchmark
// matrix (BenchmarkStress1M); entk-bench records it behind -stress1m.
const Stress1MSize = 1 << 20

// Stress10MSize is the guarded 10M-task probe's ensemble width: one
// more 10x step (160 full scheduling waves), gated behind
// ENTK_STRESS_10M=1 / entk-bench -stress10m because a run holds a
// multi-gigabyte live heap. It exists to show the segmented pending
// queue's per-unit cost stays flat one order of magnitude past the
// 1M wall the seed FIFO collapsed at.
const Stress10MSize = 10 << 20

// Stress1MProbe runs the 1M-task sweep point and applies the probe
// checks below.
func Stress1MProbe() (*Stress100kResult, error) { return stressProbe("1m", Stress1MSize) }

// Stress10MProbe runs the 10M-task sweep point and applies the probe
// checks below.
func Stress10MProbe() (*Stress100kResult, error) { return stressProbe("10m", Stress10MSize) }

// stressProbe runs one guarded many-wave sweep point and applies looser
// golden checks than the 100k tier: exact task and overhead accounting
// (these never loosen), the unchanged queue-wait model, and the
// execution span with per-wave launcher-stagger slack (the 100k tier's
// fixed 5s slack is a single-digit-wave bound).
func stressProbe(label string, size int) (*Stress100kResult, error) {
	res, err := Stress100k([]int{size})
	if err != nil {
		return nil, err
	}
	w := res.Rows[0]
	if w.Tasks != size {
		return nil, fmt.Errorf("stress %s: ran %d tasks, want %d", label, w.Tasks, size)
	}
	perUnit := pilot.DefaultConfig().UMSubmitPerUnit.Seconds()
	wantOvh := float64(w.Tasks) * perUnit
	if math.Abs(w.PatternOvhSec-wantOvh) > 1e-6*wantOvh+1e-9 {
		return nil, fmt.Errorf("stress %s: pattern overhead %.3fs, want exactly %.3fs", label, w.PatternOvhSec, wantOvh)
	}
	waves := float64((size + Stress100kCores - 1) / Stress100kCores)
	wantExec := waves * stress100kSeconds
	if w.ExecSec < wantExec || w.ExecSec > wantExec+5*waves {
		return nil, fmt.Errorf("stress %s: exec %.1fs, want ~%.1fs (%v waves)", label, w.ExecSec, wantExec, waves)
	}
	if w.TTCSec < w.ExecSec+w.PatternOvhSec {
		return nil, fmt.Errorf("stress %s: TTC %.1fs < exec %.1fs + overhead %.1fs",
			label, w.TTCSec, w.ExecSec, w.PatternOvhSec)
	}
	return res, nil
}

// SimColumns returns the simulated-quantity columns (everything except
// the wall-clock measurements) for cross-engine and cross-layout parity
// assertions: two runs that simulate the same system must agree on these
// byte for byte.
func (r *Stress100kResult) SimColumns() []Stress100kPoint {
	out := make([]Stress100kPoint, len(r.Rows))
	for i, w := range r.Rows {
		w.WallMS = 0
		w.UnitsPerSecWall = 0
		out[i] = w
	}
	return out
}

// Check asserts exact accounting at 10k scale: every task ran (no
// retries, no losses), the pattern overhead is the client-side submission
// cost of every unit, and each stage's span is the expected number of
// waves of the per-task runtime (plus bounded launcher stagger).
func (r *StressEoPResult) Check() error {
	if len(r.Rows) == 0 {
		return fmt.Errorf("stress eop: no rows")
	}
	for _, w := range r.Rows {
		if w.Tasks != w.Pipelines*w.Stages {
			return fmt.Errorf("stress eop: %d pipelines x %d stages produced %d tasks",
				w.Pipelines, w.Stages, w.Tasks)
		}
		waves := float64((w.Pipelines + StressCores - 1) / StressCores)
		wantExec := waves * stressEoPSeconds * float64(w.Stages)
		// Launcher stagger bound: each wave pays at most
		// pipelines/launcherWidth launch latencies before the last task
		// starts; 5s of slack per stage is generous at these parameters.
		if w.ExecSec < wantExec || w.ExecSec > wantExec+5*float64(w.Stages) {
			return fmt.Errorf("stress eop: %d pipelines exec %.1fs, want ~%.1fs (%v waves/stage)",
				w.Pipelines, w.ExecSec, wantExec, waves)
		}
		if w.TTCSec < w.ExecSec+w.PatternOvhSec {
			return fmt.Errorf("stress eop: TTC %.1fs < exec %.1fs + pattern overhead %.1fs",
				w.TTCSec, w.ExecSec, w.PatternOvhSec)
		}
	}
	return nil
}
