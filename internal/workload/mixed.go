package workload

import (
	"fmt"
	"io"
	"math"
	"time"

	"entk/internal/cluster"
	"entk/internal/core"
	"entk/internal/pilot"
	"entk/internal/vclock"
)

// The mixed tier is the graph API's payoff workload (the PR 3 open
// item): a ~100k-task campaign of heterogeneous concurrent pipelines —
// interleaved wide/narrow, depth 2-4, single-core and 4-core MPI tasks —
// on the 65536-core sim.stress64k machine, expressed directly against
// the Task/Stage/Pipeline graph and executed by one AppManager. Where
// the single-stage 100k tier stresses one huge homogeneous wave, this
// tier stresses the scheduler's fragmentation paths: waves of different
// widths and unit sizes arrive and drain at different times on one
// shared allocation, and the per-pipeline TTC decompositions must still
// come out exact.

// StressMixedPipeline describes one pipeline of the mixed campaign.
type StressMixedPipeline struct {
	Name     string
	Width    int      // tasks per stage
	Depth    int      // stages
	CoresPer int      // cores per task (MPI when > 1)
	Tags     []string // pilot affinity tags (multi-pilot campaigns)
	Seconds  float64  // per-task runtime; 0 = the tier default (30s)
}

// taskSeconds resolves the per-task runtime against the tier default.
func (pp *StressMixedPipeline) taskSeconds() float64 {
	if pp.Seconds > 0 {
		return pp.Seconds
	}
	return stress100kSeconds
}

// Stress100kMixedPlan is the default campaign: 100352 tasks total, peak
// concurrent demand 51200 cores (each stage runs in one wave; the mix,
// not oversubscription, is the point — the single-stage tier already
// covers multi-wave).
var Stress100kMixedPlan = []StressMixedPipeline{
	{Name: "wide", Width: 32768, Depth: 2, CoresPer: 1},
	{Name: "mid", Width: 8192, Depth: 3, CoresPer: 1},
	{Name: "narrow", Width: 2560, Depth: 4, CoresPer: 4},
}

// stress100kMixedSmokePlan is the scaled-down plan the -short/CI smoke
// runs; shape-identical, 1/32 the width.
var stress100kMixedSmokePlan = []StressMixedPipeline{
	{Name: "wide", Width: 1024, Depth: 2, CoresPer: 1},
	{Name: "mid", Width: 256, Depth: 3, CoresPer: 1},
	{Name: "narrow", Width: 80, Depth: 4, CoresPer: 4},
}

// Stress100kMixedRow is one pipeline's (or the campaign's) measured
// decomposition.
type Stress100kMixedRow struct {
	Name            string
	Width           int
	Depth           int
	CoresPer        int
	Tasks           int
	TTCSec          float64
	ExecSec         float64
	PatternOvhSec   float64
	WallMS          float64
	UnitsPerSecWall float64
}

// Stress100kMixedResult holds the campaign outcome: the aggregate row,
// per-pipeline rows, and the handle-level components. Machine and Cores
// record the pilot the campaign ran on (the oversubscribed tier and the
// smoke plans run on different pilots than the default 64k machine).
type Stress100kMixedResult struct {
	Plan            []StressMixedPipeline
	Machine         string
	Cores           int
	Campaign        Stress100kMixedRow
	Pipelines       []Stress100kMixedRow
	QueueWaitSec    float64
	AgentStartupSec float64
	CoreOvhSec      float64
}

// buildMixedPipelines expresses the plan through the graph API: one
// Pipeline per plan entry, Depth stages of Width tasks each, sharing
// one kernel instance per pipeline (bind never mutates it).
func buildMixedPipelines(plan []StressMixedPipeline) []*core.Pipeline {
	pls := make([]*core.Pipeline, len(plan))
	for i, pp := range plan {
		kernel := &core.Kernel{
			Name:   "misc.sleep",
			Params: map[string]float64{"seconds": pp.taskSeconds()},
			Cores:  pp.CoresPer,
			MPI:    pp.CoresPer > 1,
		}
		kernel.Tags = pp.Tags
		stages := make([]*core.Stage, pp.Depth)
		for s := range stages {
			tasks := make([]core.Task, pp.Width)
			for t := range tasks {
				tasks[t] = core.Task{Kernel: kernel}
			}
			stages[s] = &core.Stage{Tasks: tasks}
		}
		pls[i] = &core.Pipeline{Name: pp.Name, Stages: stages}
	}
	return pls
}

// Stress100kMixed runs the mixed campaign on the default engine.
func Stress100kMixed(plan []StressMixedPipeline) (*Stress100kMixedResult, error) {
	return Stress100kMixedOn(plan, DefaultEngine)
}

// Stress100kMixedOn is Stress100kMixed on an explicit vclock engine.
func Stress100kMixedOn(plan []StressMixedPipeline, eng vclock.Engine) (*Stress100kMixedResult, error) {
	if plan == nil {
		plan = Stress100kMixedPlan
	}
	return stressCampaignOn(Stress100kMachine, Stress100kCores, plan, eng)
}

// stressCampaignOn runs a mixed campaign plan through one AppManager on
// an explicit pilot (machine label + size) and vclock engine — the
// shared runner behind the mixed and oversubscribed tiers.
func stressCampaignOn(machine string, cores int, plan []StressMixedPipeline, eng vclock.Engine) (*Stress100kMixedResult, error) {
	v := vclock.NewVirtualEngine(eng)
	rcfg := pilot.DefaultConfig()
	rcfg.ProfLayout = DefaultProfLayout
	rcfg.PendingRef = DefaultPendingRef
	h, err := core.NewResourceHandle(machine, cores, 10000*time.Hour,
		core.Config{Clock: v, Exec: DefaultExec, Runtime: rcfg})
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	var camp *core.CampaignReport
	var runErr error
	v.Run(func() {
		if runErr = h.Allocate(); runErr != nil {
			return
		}
		camp, runErr = core.NewAppManager(h).Run(buildMixedPipelines(plan)...)
		if derr := h.Deallocate(); runErr == nil {
			runErr = derr
		}
	})
	if runErr != nil {
		return nil, fmt.Errorf("stress 100k mixed: %w", runErr)
	}
	wall := time.Since(t0)
	// Like handle.Execute, fold the dealloc control time (spent after
	// Run returned) into the campaign's core overhead so this tier's
	// column is computed under the same rule as the single-stage tier.
	camp.Campaign.CoreOverhead = h.ControlOverhead()

	res := &Stress100kMixedResult{
		Plan:            plan,
		Machine:         machine,
		Cores:           cores,
		QueueWaitSec:    camp.Campaign.QueueWait.Seconds(),
		AgentStartupSec: camp.Campaign.AgentStartup.Seconds(),
		CoreOvhSec:      camp.Campaign.CoreOverhead.Seconds(),
	}
	row := func(name string, pp *StressMixedPipeline, rep *core.Report) Stress100kMixedRow {
		r := Stress100kMixedRow{
			Name:          name,
			Tasks:         rep.Tasks,
			TTCSec:        rep.TTC.Seconds(),
			ExecSec:       rep.ExecTime().Seconds(),
			PatternOvhSec: rep.PatternOverhead.Seconds(),
		}
		if pp != nil {
			r.Width, r.Depth, r.CoresPer = pp.Width, pp.Depth, pp.CoresPer
		}
		return r
	}
	for i := range plan {
		res.Pipelines = append(res.Pipelines, row(plan[i].Name, &plan[i], camp.Pipelines[i]))
	}
	res.Campaign = row("campaign", nil, camp.Campaign)
	res.Campaign.WallMS = float64(wall) / float64(time.Millisecond)
	res.Campaign.UnitsPerSecWall = float64(camp.Campaign.Tasks) / wall.Seconds()
	return res, nil
}

// Table renders the campaign.
func (r *Stress100kMixedResult) Table() string {
	headers := []string{"pipeline", "width", "depth", "cores/task", "tasks",
		"ttc_s", "exec_s", "pattern_ovh_s", "wall_ms", "units/s(wall)"}
	var rows [][]string
	for _, w := range append(append([]Stress100kMixedRow(nil), r.Pipelines...), r.Campaign) {
		width, depth, cores := "-", "-", "-"
		if w.Width > 0 {
			width, depth, cores = di(w.Width), di(w.Depth), di(w.CoresPer)
		}
		wall, ups := "-", "-"
		if w.WallMS > 0 {
			wall, ups = f1(w.WallMS), f1(w.UnitsPerSecWall)
		}
		rows = append(rows, []string{
			w.Name, width, depth, cores, di(w.Tasks),
			f1(w.TTCSec), f1(w.ExecSec), f1(w.PatternOvhSec), wall, ups,
		})
	}
	return table(headers, rows)
}

// Check asserts the mixed tier's golden shapes:
//
//   - exact accounting per pipeline and for the campaign: every planned
//     task ran, and each pipeline's pattern overhead is exactly its
//     task count times the client-side submission cost (pipelines
//     submit concurrently but each pays its own serialized cost);
//   - every stage of every pipeline fits one wave (that is the plan's
//     shape), so each pipeline's execution time is its depth in waves
//     of the per-task runtime plus bounded launcher stagger;
//   - the queue wait is dominated by the per-node backfill component,
//     as in the single-stage tier (one shared pilot);
//   - concurrency: the campaign TTC equals the slowest pipeline's TTC
//     and is strictly less than the pipelines' serialized sum — the
//     heterogeneous pipelines genuinely overlapped on one allocation.
func (r *Stress100kMixedResult) Check() error {
	if len(r.Pipelines) != len(r.Plan) || len(r.Plan) < 2 {
		return fmt.Errorf("stress 100k mixed: %d pipeline rows for %d plan entries",
			len(r.Pipelines), len(r.Plan))
	}
	m, err := cluster.Lookup(r.Machine)
	if err != nil {
		return err
	}
	perUnit := pilot.DefaultConfig().UMSubmitPerUnit.Seconds()
	peak := 0
	wantTotal := 0
	var maxTTC, sumTTC float64
	for i, pp := range r.Plan {
		w := r.Pipelines[i]
		wantTasks := pp.Width * pp.Depth
		wantTotal += wantTasks
		peak += pp.Width * pp.CoresPer
		if w.Tasks != wantTasks {
			return fmt.Errorf("stress 100k mixed: pipeline %s ran %d tasks, want %d", w.Name, w.Tasks, wantTasks)
		}
		wantOvh := float64(w.Tasks) * perUnit
		if math.Abs(w.PatternOvhSec-wantOvh) > 1e-6*wantOvh+1e-9 {
			return fmt.Errorf("stress 100k mixed: pipeline %s pattern overhead %.3fs, want exactly %.3fs",
				w.Name, w.PatternOvhSec, wantOvh)
		}
		wantExec := float64(pp.Depth) * pp.taskSeconds()
		if w.ExecSec < wantExec || w.ExecSec > wantExec+5*float64(pp.Depth) {
			return fmt.Errorf("stress 100k mixed: pipeline %s exec %.1fs, want ~%.1fs (%d one-wave stages)",
				w.Name, w.ExecSec, wantExec, pp.Depth)
		}
		if w.TTCSec < w.ExecSec+w.PatternOvhSec {
			return fmt.Errorf("stress 100k mixed: pipeline %s TTC %.1fs < exec %.1fs + overhead %.1fs",
				w.Name, w.TTCSec, w.ExecSec, w.PatternOvhSec)
		}
		if w.TTCSec > maxTTC {
			maxTTC = w.TTCSec
		}
		sumTTC += w.TTCSec
	}
	if peak > r.Cores {
		return fmt.Errorf("stress 100k mixed: plan's peak demand %d exceeds the %d-core pilot (stages would split into waves)",
			peak, r.Cores)
	}
	c := r.Campaign
	if c.Tasks != wantTotal {
		return fmt.Errorf("stress 100k mixed: campaign ran %d tasks, want %d", c.Tasks, wantTotal)
	}
	wantOvh := float64(wantTotal) * perUnit
	if math.Abs(c.PatternOvhSec-wantOvh) > 1e-6*wantOvh+1e-9 {
		return fmt.Errorf("stress 100k mixed: campaign pattern overhead %.3fs, want exactly %.3fs",
			c.PatternOvhSec, wantOvh)
	}
	if math.Abs(c.TTCSec-maxTTC) > 1e-9 {
		return fmt.Errorf("stress 100k mixed: campaign TTC %.3fs != slowest pipeline %.3fs", c.TTCSec, maxTTC)
	}
	if c.TTCSec >= sumTTC {
		return fmt.Errorf("stress 100k mixed: campaign TTC %.1fs not overlapping pipelines (serialized sum %.1fs)",
			c.TTCSec, sumTTC)
	}
	// Queue wait: the shared pilot's full model delay plus at most 1s of
	// control latency, with the per-node component dominating.
	nodes := m.NodesFor(r.Cores)
	baseWait := m.QueueWaitBase.Seconds()
	perNodeWait := float64(nodes) * m.QueueWaitPerNode.Seconds()
	if r.QueueWaitSec < baseWait+perNodeWait || r.QueueWaitSec > baseWait+perNodeWait+1 {
		return fmt.Errorf("stress 100k mixed: queue wait %.1fs, want ~%.1fs (base %.0fs + %d nodes)",
			r.QueueWaitSec, baseWait+perNodeWait, baseWait, nodes)
	}
	if perNodeWait < 0.9*r.QueueWaitSec {
		return fmt.Errorf("stress 100k mixed: per-node wait %.1fs not dominating queue wait %.1fs",
			perNodeWait, r.QueueWaitSec)
	}
	return nil
}

// SimColumns returns the simulated-quantity rows (wall-clock zeroed) for
// cross-engine parity assertions.
func (r *Stress100kMixedResult) SimColumns() []Stress100kMixedRow {
	out := append([]Stress100kMixedRow(nil), r.Pipelines...)
	c := r.Campaign
	c.WallMS = 0
	c.UnitsPerSecWall = 0
	out = append(out, c)
	return out
}

// ---------------------------------------------------------------------------
// Persistent traces

// ProfileTrace runs the unit-throughput workload once (the exact
// workload stress.go defines for BenchmarkPilotUnitThroughput) and
// writes the session's full event trace to w in the versioned binary
// dump format (profile.WriteTo). It returns the event count and bytes
// written — the entk-bench -profdump entry point.
func ProfileTrace(w io.Writer) (events int, bytes int64, err error) {
	h, err := runThroughputWorkload(false, DefaultEngine)
	if err != nil {
		return 0, 0, err
	}
	prof := h.Session().Prof
	n, err := prof.WriteTo(w)
	return prof.EventCount(), n, err
}
