package workload

import (
	"strings"
	"testing"
)

func TestFig3SmallSweep(t *testing.T) {
	res, err := Fig3([]int{24, 48})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 3 patterns x 2 sizes
		t.Fatalf("%d rows, want 6", len(res.Rows))
	}
	tbl := res.Table()
	for _, want := range []string{"pipeline", "sal", "ee", "core_ovh_s"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestFig3FullCheck(t *testing.T) {
	res, err := Fig3(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("fig3 shape check: %v\n%s", err, res.Table())
	}
}

func TestFig4Check(t *testing.T) {
	fig3, err := Fig3(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fig4(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(fig3); err != nil {
		t.Fatalf("fig4 shape check: %v\n%s", err, res.Table())
	}
	if !strings.Contains(res.Table(), "sim_s") {
		t.Error("fig4 table malformed")
	}
}

func TestFig5StrongScalingShape(t *testing.T) {
	// Reduced sweep: 256 replicas over 32-256 cores keeps the ratio
	// range of the full experiment at a fraction of the cost.
	res, err := Fig5(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("fig5 shape check: %v\n%s", err, res.Table())
	}
	// Sanity: the largest configuration is faster than the smallest.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.SimSec >= first.SimSec {
		t.Errorf("no strong scaling: %v -> %v", first.SimSec, last.SimSec)
	}
}

func TestFig6WeakScalingShape(t *testing.T) {
	res, err := Fig6(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("fig6 shape check: %v\n%s", err, res.Table())
	}
	// Exchange time grows with replicas.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.ExchangeSec <= first.ExchangeSec {
		t.Errorf("exchange did not grow: %v -> %v", first.ExchangeSec, last.ExchangeSec)
	}
}

func TestFig7StrongScalingShape(t *testing.T) {
	res, err := Fig7(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("fig7 shape check: %v\n%s", err, res.Table())
	}
}

func TestFig8WeakScalingShape(t *testing.T) {
	res, err := Fig8(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("fig8 shape check: %v\n%s", err, res.Table())
	}
}

func TestFig9MPIShape(t *testing.T) {
	res, err := Fig9(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("fig9 shape check: %v\n%s", err, res.Table())
	}
}

func TestEEResultCheckRejectsBadData(t *testing.T) {
	bad := &EEResult{Kind: "strong", Rows: []EEPoint{
		{Replicas: 10, Cores: 10, SimSec: 100, ExchangeSec: 1},
		{Replicas: 10, Cores: 20, SimSec: 100, ExchangeSec: 1}, // no scaling
	}}
	if err := bad.Check(); err == nil {
		t.Error("flat strong scaling accepted")
	}
	if err := (&EEResult{Kind: "weak"}).Check(); err == nil {
		t.Error("empty result accepted")
	}
	if err := (&EEResult{Kind: "x", Rows: make([]EEPoint, 2)}).Check(); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSALResultCheckRejectsBadData(t *testing.T) {
	bad := &SALResult{Kind: "mpi", Rows: []SALPoint{
		{CoresPerSim: 1, SimSec: 10},
		{CoresPerSim: 16, SimSec: 20}, // got slower
	}}
	if err := bad.Check(); err == nil {
		t.Error("regressing MPI accepted")
	}
	if err := (&SALResult{Kind: "strong"}).Check(); err == nil {
		t.Error("empty result accepted")
	}
}
