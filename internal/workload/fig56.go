package workload

import (
	"fmt"

	"entk/internal/core"
	"entk/internal/stats"
)

// EEPoint is one configuration of the EE scaling experiments (Figures 5
// and 6): Amber temperature-exchange REMD of alanine dipeptide on
// SuperMIC, 6 ps per replica per cycle, one core per replica.
type EEPoint struct {
	Replicas    int
	Cores       int
	SimSec      float64 // simulation stage span
	ExchangeSec float64 // exchange stage span
	TTCSec      float64
}

// EEResult holds a strong- or weak-scaling sweep.
type EEResult struct {
	Kind string // "strong" or "weak"
	Rows []EEPoint
}

// eePoint runs one EE configuration.
func eePoint(replicas, cores int) (EEPoint, error) {
	rep, err := runOnFreshClock("lsu.supermic", cores, func() core.Pattern {
		return &core.EnsembleExchange{
			Replicas: replicas,
			Cycles:   1,
			SimulationKernel: func(cycle, r int) *core.Kernel {
				return &core.Kernel{
					Name:   "md.amber",
					Params: map[string]float64{"atoms": alanineAtoms, "ps": eePS},
				}
			},
			ExchangeKernel: func(cycle int) *core.Kernel {
				return &core.Kernel{
					Name:   "md.remd_exchange",
					Params: map[string]float64{"replicas": float64(replicas)},
				}
			},
		}
	})
	if err != nil {
		return EEPoint{}, err
	}
	return EEPoint{
		Replicas:    replicas,
		Cores:       cores,
		SimSec:      rep.Phase("simulation").Span.Seconds(),
		ExchangeSec: rep.Phase("exchange").Span.Seconds(),
		TTCSec:      rep.TTC.Seconds(),
	}, nil
}

// Fig5 is the EE strong-scaling experiment: 2560 replicas over 20-2560
// cores on SuperMIC.
func Fig5(cores []int) (*EEResult, error) {
	if cores == nil {
		cores = Fig5Cores
	}
	res := &EEResult{Kind: "strong"}
	for _, c := range cores {
		p, err := eePoint(2560, c)
		if err != nil {
			return nil, fmt.Errorf("fig5 cores=%d: %w", c, err)
		}
		res.Rows = append(res.Rows, p)
	}
	return res, nil
}

// Fig6 is the EE weak-scaling experiment: replicas = cores from 20 to
// 2560 on SuperMIC.
func Fig6(sizes []int) (*EEResult, error) {
	if sizes == nil {
		sizes = Fig6Sizes
	}
	res := &EEResult{Kind: "weak"}
	for _, n := range sizes {
		p, err := eePoint(n, n)
		if err != nil {
			return nil, fmt.Errorf("fig6 n=%d: %w", n, err)
		}
		res.Rows = append(res.Rows, p)
	}
	return res, nil
}

// Table renders the sweep.
func (r *EEResult) Table() string {
	headers := []string{"replicas", "cores", "sim_s", "exchange_s", "ttc_s"}
	var rows [][]string
	for _, w := range r.Rows {
		rows = append(rows, []string{
			di(w.Replicas), di(w.Cores), f1(w.SimSec), f2(w.ExchangeSec), f1(w.TTCSec),
		})
	}
	return table(headers, rows)
}

// Check asserts the paper's findings. Strong scaling (Fig. 5): the
// simulation time halves as cores double (log-log slope ~ -1) while the
// exchange time stays constant. Weak scaling (Fig. 6): the simulation
// time stays roughly constant while the exchange time grows linearly with
// the number of replicas.
func (r *EEResult) Check() error {
	if len(r.Rows) < 2 {
		return fmt.Errorf("ee %s: need at least two rows", r.Kind)
	}
	var cores, reps, sim, exch []float64
	for _, w := range r.Rows {
		cores = append(cores, float64(w.Cores))
		reps = append(reps, float64(w.Replicas))
		sim = append(sim, w.SimSec)
		exch = append(exch, w.ExchangeSec)
	}
	switch r.Kind {
	case "strong":
		slope, err := stats.LogLogSlope(cores, sim)
		if err != nil {
			return err
		}
		if slope > -0.85 || slope < -1.15 {
			return fmt.Errorf("fig5: simulation log-log slope %.3f, want ~ -1", slope)
		}
		if spread, err := stats.RelSpread(exch); err != nil || spread > 0.05 {
			return fmt.Errorf("fig5: exchange time not constant: spread=%.3f err=%v", spread, err)
		}
	case "weak":
		if spread, err := stats.RelSpread(sim); err != nil || spread > 0.30 {
			return fmt.Errorf("fig6: simulation time not flat: spread=%.3f err=%v", spread, err)
		}
		slope, _, r2, err := stats.LinearFit(reps, exch)
		if err != nil {
			return err
		}
		if slope <= 0 || r2 < 0.99 {
			return fmt.Errorf("fig6: exchange not linear in replicas (slope=%.5f r2=%.4f)", slope, r2)
		}
	default:
		return fmt.Errorf("ee: unknown kind %q", r.Kind)
	}
	return nil
}
