package workload

import (
	"testing"

	"entk/internal/vclock"
)

// TestFaultTierSmoke runs the shape-identical smoke plan on both
// engines — small enough for -race, covering the rebind path end to end
// with the tier's golden checks.
func TestFaultTierSmoke(t *testing.T) {
	for _, eng := range []vclock.Engine{vclock.EngineHandoff, vclock.EngineRef} {
		t.Run(eng.String(), func(t *testing.T) {
			res, err := FaultTierOn(&FaultTierSmoke, eng)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Check(); err != nil {
				t.Errorf("%v\n%s", err, res.Table())
			}
		})
	}
}

// TestFaultTierFull is the 98304-task acceptance gate: a mid-wave pilot
// kill on the 100k-tier machine recovers by rebinding ~half the fleet's
// in-flight units, with exact accounting and bounded recovery overhead.
func TestFaultTierFull(t *testing.T) {
	skip100k(t)
	res, err := FaultTier(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Errorf("%v\n%s", err, res.Table())
	}
	t.Logf("\n%s", res.Table())
}
