package workload

import (
	"fmt"
	"math"

	"entk/internal/core"
	"entk/internal/stats"
)

// Fig4Row is one configuration of Figure 4: the Gromacs-LSDMap SAL
// application on Comet with tasks=cores.
type Fig4Row struct {
	Tasks           int
	Cores           int
	SimSec          float64 // Gromacs stage span
	AnalysisSec     float64 // LSDMap stage span
	CoreOverheadSec float64
	PatternOverhead float64
	TTCSec          float64
}

// Fig4Result holds the sweep plus the matching Fig3 overheads for the
// kernel-invariance comparison.
type Fig4Result struct {
	Rows []Fig4Row
}

// Fig4 validates kernel plugins: the SAL pattern with real MD kernels
// (Gromacs simulations, one LSDMap analysis) over the same 24-192 range
// as Figure 3. The toolkit overheads must match Figure 3's — changing the
// kernels does not change the toolkit's behaviour.
func Fig4(sizes []int) (*Fig4Result, error) {
	if sizes == nil {
		sizes = Fig4Sizes
	}
	res := &Fig4Result{}
	for _, n := range sizes {
		n := n
		rep, err := runOnFreshClock("xsede.comet", n, func() core.Pattern {
			return &core.SimulationAnalysisLoop{
				Iterations:  1,
				Simulations: n,
				Analyses:    1,
				SimulationKernel: func(it, i int) *core.Kernel {
					return &core.Kernel{
						Name:   "md.gromacs",
						Params: map[string]float64{"atoms": alanineAtoms, "ps": salPS},
					}
				},
				AnalysisKernel: func(it, i int) *core.Kernel {
					return &core.Kernel{
						Name:   "ana.lsdmap",
						Params: map[string]float64{"points": float64(n)},
					}
				},
			}
		})
		if err != nil {
			return nil, fmt.Errorf("fig4 n=%d: %w", n, err)
		}
		res.Rows = append(res.Rows, Fig4Row{
			Tasks:           n,
			Cores:           n,
			SimSec:          rep.Phase("simulation").Span.Seconds(),
			AnalysisSec:     rep.Phase("analysis").Span.Seconds(),
			CoreOverheadSec: rep.CoreOverhead.Seconds(),
			PatternOverhead: rep.PatternOverhead.Seconds(),
			TTCSec:          rep.TTC.Seconds(),
		})
	}
	return res, nil
}

// Table renders the figure's data.
func (r *Fig4Result) Table() string {
	headers := []string{"tasks", "cores", "sim_s", "analysis_s", "core_ovh_s", "pattern_ovh_s", "ttc_s"}
	var rows [][]string
	for _, w := range r.Rows {
		rows = append(rows, []string{
			di(w.Tasks), di(w.Cores), f2(w.SimSec), f2(w.AnalysisSec),
			f2(w.CoreOverheadSec), f2(w.PatternOverhead), f2(w.TTCSec),
		})
	}
	return table(headers, rows)
}

// Check asserts the paper's finding: overheads with science kernels match
// the overheads with synthetic kernels (Figure 3) on the same range —
// kernel plugins do not perturb the toolkit's overhead.
func (r *Fig4Result) Check(fig3 *Fig3Result) error {
	if len(r.Rows) == 0 {
		return fmt.Errorf("fig4: no rows")
	}
	var coreOvh []float64
	for _, w := range r.Rows {
		coreOvh = append(coreOvh, w.CoreOverheadSec)
	}
	if spread, err := stats.RelSpread(coreOvh); err != nil || spread > 0.2 {
		return fmt.Errorf("fig4: core overhead not constant: spread=%.2f err=%v", spread, err)
	}
	if fig3 != nil {
		// Compare per-size pattern overheads against Fig3's SAL rows.
		salRows := fig3.byPattern("sal")
		for _, w := range r.Rows {
			for _, s := range salRows {
				// Fig3's SAL runs 2n tasks for n files; Fig4 runs n+1.
				// Compare per-task overhead rates instead of totals.
				if s.Tasks != w.Tasks {
					continue
				}
				rate3 := s.PatternOverhead / float64(2*s.Tasks)
				rate4 := w.PatternOverhead / float64(w.Tasks+1)
				if rate3 <= 0 || math.Abs(rate4-rate3)/rate3 > 0.25 {
					return fmt.Errorf("fig4: per-task overhead %g differs from fig3's %g at n=%d",
						rate4, rate3, w.Tasks)
				}
			}
		}
	}
	return nil
}
