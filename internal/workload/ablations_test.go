package workload

import (
	"strings"
	"testing"
)

func TestAblationExchangeMode(t *testing.T) {
	res, err := AblationExchangeMode()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\n%s", err, res.Table())
	}
	if !strings.Contains(res.Table(), "pairwise") {
		t.Error("table missing pairwise row")
	}
}

func TestAblationBackfill(t *testing.T) {
	res, err := AblationBackfill()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\n%s", err, res.Table())
	}
}

func TestAblationDispatch(t *testing.T) {
	res, err := AblationDispatch()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\n%s", err, res.Table())
	}
}

func TestAblationAgentScheduler(t *testing.T) {
	res, err := AblationAgentScheduler()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\n%s", err, res.Table())
	}
}
