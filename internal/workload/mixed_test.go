package workload

import (
	"bytes"
	"reflect"
	"testing"

	"entk/internal/profile"
	"entk/internal/vclock"
)

// TestStress100kMixedSweep runs the full mixed campaign — 100352 tasks
// across three heterogeneous concurrent pipelines — and verifies its
// golden TTC-decomposition checks.
func TestStress100kMixedSweep(t *testing.T) {
	skip100k(t)
	res, err := Stress100kMixed(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Errorf("%v\n%s", err, res.Table())
	}
}

// TestStress100kMixedEngineParity asserts the campaign's simulated
// columns are byte-identical across vclock engines — the acceptance
// gate that a heterogeneous concurrent campaign at 100k scale is still
// a deterministic simulation.
func TestStress100kMixedEngineParity(t *testing.T) {
	skip100k(t)
	a, err := Stress100kMixedOn(nil, vclock.EngineHandoff)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stress100kMixedOn(nil, vclock.EngineRef)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.SimColumns(), b.SimColumns()) {
		t.Errorf("mixed campaign sim columns diverge across engines:\nhandoff:\n%s\nref:\n%s",
			a.Table(), b.Table())
	}
}

// TestStress100kMixedSmoke keeps the scaled-down campaign in every tier
// (including -short and -race) on both engines.
func TestStress100kMixedSmoke(t *testing.T) {
	for _, eng := range []vclock.Engine{vclock.EngineHandoff, vclock.EngineRef} {
		res, err := Stress100kMixedOn(stress100kMixedSmokePlan, eng)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Check(); err != nil {
			t.Errorf("engine %v: %v\n%s", eng, err, res.Table())
		}
	}
}

// TestStress100kMixedLayoutParity runs the smoke campaign on the seed
// profiler layout and requires identical simulated columns — the mixed
// tier's analogue of TestStress100kLayoutParity.
func TestStress100kMixedLayoutParity(t *testing.T) {
	base, err := Stress100kMixedOn(stress100kMixedSmokePlan, vclock.EngineHandoff)
	if err != nil {
		t.Fatal(err)
	}
	var ref *Stress100kMixedResult
	err = WithProfLayout(profile.LayoutRef, func() error {
		var err error
		ref, err = Stress100kMixedOn(stress100kMixedSmokePlan, vclock.EngineHandoff)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.SimColumns(), ref.SimColumns()) {
		t.Errorf("mixed campaign sim columns diverge across profiler layouts:\ncolumnar:\n%s\nref:\n%s",
			base.Table(), ref.Table())
	}
}

// TestProfileTrace round-trips the unit-throughput workload's session
// trace through the binary dump format.
func TestProfileTrace(t *testing.T) {
	var buf bytes.Buffer
	events, n, err := ProfileTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 || n != int64(buf.Len()) {
		t.Fatalf("trace wrote %d events / %d bytes (buffer %d)", events, n, buf.Len())
	}
	p := profile.New(vclock.NewVirtual())
	if _, err := p.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if p.EventCount() != events {
		t.Errorf("reloaded %d events, want %d", p.EventCount(), events)
	}
	// The trace must contain the full unit lifecycle for every task.
	if got := len(p.Entities("unit.")); got != ThroughputUnits {
		t.Errorf("trace has %d unit entities, want %d", got, ThroughputUnits)
	}
	if _, ok := p.First("unit.", "exec_start"); !ok {
		t.Error("trace missing exec_start events")
	}
	if sum := p.SumPairs("unit.", "exec_start", "exec_stop"); sum <= 0 {
		t.Error("trace busy time not reconstructible")
	}
}
