// Package workload reproduces the paper's evaluation (Section IV): one
// runner per figure, each building the paper's workload, executing it on
// the simulated testbed through the toolkit, and returning the rows the
// figure plots. Check methods assert the qualitative shapes the paper
// reports, so regressions in the scaling behaviour fail loudly.
package workload

import (
	"fmt"
	"strings"
	"time"

	"entk/internal/core"
	"entk/internal/pilot"
	"entk/internal/profile"
	"entk/internal/vclock"
)

// alanine dipeptide parameters used throughout the paper's experiments.
const (
	alanineAtoms = 2881
	eePS         = 6.0 // Figure 5/6: 6 ps per cycle
	salPS        = 0.6 // Figure 7/8: 0.6 ps per iteration
)

// Defaults per figure (the paper's sweep points).
var (
	Fig3Sizes = []int{24, 48, 96, 192}
	Fig4Sizes = []int{24, 48, 96, 192}
	Fig5Cores = []int{20, 40, 80, 160, 320, 640, 1280, 2560}
	Fig6Sizes = []int{20, 40, 80, 160, 320, 640, 1280, 2560}
	Fig7Cores = []int{64, 128, 256, 512, 1024}
	Fig8Sizes = []int{64, 128, 256, 512, 1024, 2048, 4096}
	Fig9CPS   = []int{1, 16, 32, 64} // cores per simulation
)

// DefaultEngine is the vclock engine the figure and stress runners use.
// entk-bench's -engine flag sets it once at startup (before any runner
// executes); tests that need a specific engine use the *On variants
// instead of mutating it.
var DefaultEngine = vclock.EngineHandoff

// DefaultProfLayout is the profiler event-storage layout the runners use.
// The layout-parity tests flip it to profile.LayoutRef to prove the
// columnar layout changes no figure or stress result.
var DefaultProfLayout = profile.LayoutColumnar

// DefaultExec is the executor path the runners use: the graph executor,
// or the seed pattern executor (core.ExecRef) kept as the reference.
// The graph-parity legs flip it to prove the graph executor changes no
// figure or stress result.
var DefaultExec = core.ExecGraph

// DefaultPendingRef selects the agent's pending-queue implementation:
// false is the segmented queue, true the seed's flat compacting FIFO
// kept as the reference (pilot.Config.PendingRef). The queue-parity
// legs flip it to prove the segmented queue changes no figure or
// stress result.
var DefaultPendingRef = false

// WithPendingRef runs fn with DefaultPendingRef set to ref and restores
// the previous value before returning — the pending-queue analogue of
// WithProfLayout.
func WithPendingRef(ref bool, fn func() error) error {
	prev := DefaultPendingRef
	DefaultPendingRef = ref
	defer func() { DefaultPendingRef = prev }()
	return fn()
}

// WithExecPath runs fn with DefaultExec set to e and restores the
// previous path before returning — the executor analogue of
// WithProfLayout.
func WithExecPath(e core.ExecPath, fn func() error) error {
	prev := DefaultExec
	DefaultExec = e
	defer func() { DefaultExec = prev }()
	return fn()
}

// WithProfLayout runs fn with DefaultProfLayout set to l and restores the
// previous layout before returning — the one sanctioned way to flip the
// layout axis, so no caller can leave the global pointing at the wrong
// layout for subsequent legs.
func WithProfLayout(l profile.Layout, fn func() error) error {
	prev := DefaultProfLayout
	DefaultProfLayout = l
	defer func() { DefaultProfLayout = prev }()
	return fn()
}

// runOnFreshClock executes one pattern on a dedicated virtual clock and
// resource handle, returning the report. Every experiment point runs in
// its own simulated world so points are independent and deterministic.
func runOnFreshClock(resource string, cores int, build func() core.Pattern) (*core.Report, error) {
	return runOnFreshClockEngine(resource, cores, DefaultEngine, build)
}

// runOnFreshClockEngine is runOnFreshClock on an explicit vclock engine.
func runOnFreshClockEngine(resource string, cores int, eng vclock.Engine, build func() core.Pattern) (*core.Report, error) {
	v := vclock.NewVirtualEngine(eng)
	rcfg := pilot.DefaultConfig()
	rcfg.ProfLayout = DefaultProfLayout
	rcfg.PendingRef = DefaultPendingRef
	h, err := core.NewResourceHandle(resource, cores, 10000*time.Hour,
		core.Config{Clock: v, Exec: DefaultExec, Runtime: rcfg})
	if err != nil {
		return nil, err
	}
	var rep *core.Report
	var runErr error
	v.Run(func() {
		rep, runErr = h.Execute(build())
	})
	if runErr != nil {
		return rep, runErr
	}
	return rep, nil
}

// table renders rows of (header, lines) as a fixed-width text table.
func table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func di(x int) string     { return fmt.Sprintf("%d", x) }
