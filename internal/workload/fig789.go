package workload

import (
	"fmt"

	"entk/internal/core"
	"entk/internal/stats"
)

// SALPoint is one configuration of the SAL scaling experiments (Figures
// 7-9): Amber-CoCo of alanine dipeptide on Stampede.
type SALPoint struct {
	Simulations int
	CoresPerSim int
	Cores       int // total pilot cores
	SimSec      float64
	AnalysisSec float64
	TTCSec      float64
}

// SALResult holds one sweep.
type SALResult struct {
	Kind string // "strong", "weak", or "mpi"
	Rows []SALPoint
}

// salPoint runs one Amber-CoCo SAL configuration.
func salPoint(sims, coresPerSim, pilotCores int, ps float64) (SALPoint, error) {
	rep, err := runOnFreshClock("xsede.stampede", pilotCores, func() core.Pattern {
		return &core.SimulationAnalysisLoop{
			Iterations:  1,
			Simulations: sims,
			Analyses:    1,
			SimulationKernel: func(it, i int) *core.Kernel {
				return &core.Kernel{
					Name:   "md.amber",
					Params: map[string]float64{"atoms": alanineAtoms, "ps": ps},
					Cores:  coresPerSim,
					MPI:    coresPerSim > 1,
				}
			},
			AnalysisKernel: func(it, i int) *core.Kernel {
				// CoCo runs in serial and reads every simulation.
				return &core.Kernel{
					Name:   "ana.coco",
					Params: map[string]float64{"sims": float64(sims)},
				}
			},
		}
	})
	if err != nil {
		return SALPoint{}, err
	}
	return SALPoint{
		Simulations: sims,
		CoresPerSim: coresPerSim,
		Cores:       pilotCores,
		SimSec:      rep.Phase("simulation").Span.Seconds(),
		AnalysisSec: rep.Phase("analysis").Span.Seconds(),
		TTCSec:      rep.TTC.Seconds(),
	}, nil
}

// Fig7 is the SAL strong-scaling experiment: 1024 simulations of 0.6 ps,
// one core each, over 64-1024 pilot cores on Stampede.
func Fig7(cores []int) (*SALResult, error) {
	if cores == nil {
		cores = Fig7Cores
	}
	res := &SALResult{Kind: "strong"}
	for _, c := range cores {
		p, err := salPoint(1024, 1, c, salPS)
		if err != nil {
			return nil, fmt.Errorf("fig7 cores=%d: %w", c, err)
		}
		res.Rows = append(res.Rows, p)
	}
	return res, nil
}

// Fig8 is the SAL weak-scaling experiment: simulations = cores from 64 to
// 4096 on Stampede.
func Fig8(sizes []int) (*SALResult, error) {
	if sizes == nil {
		sizes = Fig8Sizes
	}
	res := &SALResult{Kind: "weak"}
	for _, n := range sizes {
		p, err := salPoint(n, 1, n, salPS)
		if err != nil {
			return nil, fmt.Errorf("fig8 n=%d: %w", n, err)
		}
		res.Rows = append(res.Rows, p)
	}
	return res, nil
}

// Fig9 is the MPI-capability experiment: 64 concurrent simulations of
// 6 ps (ten times Figure 7's duration), with 1, 16, 32, and 64 cores per
// simulation (64-4096 total cores) on Stampede.
func Fig9(coresPerSim []int) (*SALResult, error) {
	if coresPerSim == nil {
		coresPerSim = Fig9CPS
	}
	res := &SALResult{Kind: "mpi"}
	for _, cps := range coresPerSim {
		p, err := salPoint(64, cps, 64*cps, eePS)
		if err != nil {
			return nil, fmt.Errorf("fig9 cps=%d: %w", cps, err)
		}
		res.Rows = append(res.Rows, p)
	}
	return res, nil
}

// Table renders the sweep.
func (r *SALResult) Table() string {
	headers := []string{"sims", "cores/sim", "cores", "sim_s", "analysis_s", "ttc_s"}
	var rows [][]string
	for _, w := range r.Rows {
		rows = append(rows, []string{
			di(w.Simulations), di(w.CoresPerSim), di(w.Cores),
			f1(w.SimSec), f1(w.AnalysisSec), f1(w.TTCSec),
		})
	}
	return table(headers, rows)
}

// Check asserts the paper's findings. Strong (Fig. 7): simulation time
// decreases linearly with cores; serial analysis time constant. Weak
// (Fig. 8): simulation time constant; analysis grows with simulations.
// MPI (Fig. 9): per-simulation execution time drops as cores/sim grows.
func (r *SALResult) Check() error {
	if len(r.Rows) < 2 {
		return fmt.Errorf("sal %s: need at least two rows", r.Kind)
	}
	var cores, sims, sim, ana []float64
	for _, w := range r.Rows {
		cores = append(cores, float64(w.Cores))
		sims = append(sims, float64(w.Simulations))
		sim = append(sim, w.SimSec)
		ana = append(ana, w.AnalysisSec)
	}
	switch r.Kind {
	case "strong":
		slope, err := stats.LogLogSlope(cores, sim)
		if err != nil {
			return err
		}
		if slope > -0.80 || slope < -1.20 {
			return fmt.Errorf("fig7: simulation log-log slope %.3f, want ~ -1", slope)
		}
		if spread, err := stats.RelSpread(ana); err != nil || spread > 0.05 {
			return fmt.Errorf("fig7: analysis time not constant: spread=%.3f err=%v", spread, err)
		}
	case "weak":
		if spread, err := stats.RelSpread(sim); err != nil || spread > 0.35 {
			return fmt.Errorf("fig8: simulation time not flat: spread=%.3f err=%v", spread, err)
		}
		slope, _, r2, err := stats.LinearFit(sims, ana)
		if err != nil {
			return err
		}
		if slope <= 0 || r2 < 0.99 {
			return fmt.Errorf("fig8: analysis not linear in sims (slope=%.5f r2=%.4f)", slope, r2)
		}
	case "mpi":
		for i := 1; i < len(r.Rows); i++ {
			if r.Rows[i].SimSec >= r.Rows[i-1].SimSec {
				return fmt.Errorf("fig9: sim time did not drop from %d to %d cores/sim (%.1fs -> %.1fs)",
					r.Rows[i-1].CoresPerSim, r.Rows[i].CoresPerSim,
					r.Rows[i-1].SimSec, r.Rows[i].SimSec)
			}
		}
		// Speedup at the largest configuration should be substantial
		// (the paper reports a linear drop).
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		speedup := first.SimSec / last.SimSec
		ratio := float64(last.CoresPerSim) / float64(first.CoresPerSim)
		if speedup < 0.5*ratio {
			return fmt.Errorf("fig9: speedup %.1fx at %.0fx cores (want >= %.1fx)",
				speedup, ratio, 0.5*ratio)
		}
	default:
		return fmt.Errorf("sal: unknown kind %q", r.Kind)
	}
	return nil
}
