package workload

import (
	"fmt"
	"time"

	"entk/internal/batch"
	"entk/internal/core"
	"entk/internal/kernels"
	"entk/internal/pilot"
	"entk/internal/vclock"
)

// ---------------------------------------------------------------------------
// Ablation 1: collective vs pairwise exchange

// ExchangeModeRow compares EE exchange modes on a heterogeneous workload.
type ExchangeModeRow struct {
	Mode   string
	TTCSec float64
}

// ExchangeModeResult holds the comparison.
type ExchangeModeResult struct {
	Rows []ExchangeModeRow
}

// AblationExchangeMode runs the same heterogeneous REMD workload (64
// replicas, 4 cycles, replica runtimes spread 4x) in collective and
// pairwise exchange mode. Collective mode pays a global barrier per
// cycle; pairwise mode lets fast replicas run ahead, which is the design
// argument behind the paper's "no obligatory global synchronisation".
func AblationExchangeMode() (*ExchangeModeResult, error) {
	const replicas, cycles = 64, 4
	simK := func(cycle, r int) *core.Kernel {
		// Heterogeneous durations: 10s..40s depending on the replica.
		return &core.Kernel{
			Name:   "misc.sleep",
			Params: map[string]float64{"seconds": float64(10 + 10*(r%4))},
		}
	}
	build := func(mode core.ExchangeMode) func() core.Pattern {
		return func() core.Pattern {
			nRep := 2.0
			if mode == core.CollectiveExchange {
				nRep = float64(replicas)
			}
			return &core.EnsembleExchange{
				Replicas:         replicas,
				Cycles:           cycles,
				Mode:             mode,
				SimulationKernel: simK,
				ExchangeKernel: func(cycle int) *core.Kernel {
					return &core.Kernel{
						Name:   "md.remd_exchange",
						Params: map[string]float64{"replicas": nRep},
					}
				},
			}
		}
	}
	res := &ExchangeModeResult{}
	for _, mode := range []core.ExchangeMode{core.CollectiveExchange, core.PairwiseExchange} {
		rep, err := runOnFreshClock("lsu.supermic", replicas, build(mode))
		if err != nil {
			return nil, fmt.Errorf("ablation exchange %v: %w", mode, err)
		}
		res.Rows = append(res.Rows, ExchangeModeRow{Mode: mode.String(), TTCSec: rep.TTC.Seconds()})
	}
	return res, nil
}

// Table renders the comparison.
func (r *ExchangeModeResult) Table() string {
	headers := []string{"exchange_mode", "ttc_s"}
	var rows [][]string
	for _, w := range r.Rows {
		rows = append(rows, []string{w.Mode, f1(w.TTCSec)})
	}
	return table(headers, rows)
}

// Check asserts that pairwise exchange beats the collective barrier on a
// heterogeneous ensemble.
func (r *ExchangeModeResult) Check() error {
	if len(r.Rows) != 2 {
		return fmt.Errorf("ablation exchange: want 2 rows, got %d", len(r.Rows))
	}
	collective, pairwise := r.Rows[0].TTCSec, r.Rows[1].TTCSec
	if pairwise >= collective {
		return fmt.Errorf("ablation exchange: pairwise (%.1fs) not faster than collective (%.1fs)",
			pairwise, collective)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Ablation 2: batch queue policy (FIFO vs EASY backfill)

// BackfillRow reports the small job's queue wait under one policy.
type BackfillRow struct {
	Policy        string
	SmallWaitSec  float64
	BigArrivalSec float64 // when the blocked big pilot finally activated
}

// BackfillResult holds the comparison.
type BackfillResult struct {
	Rows []BackfillRow
}

// AblationBackfill shows the batch-layer scheduling policy's effect on
// pilot startup: on a machine mostly occupied by a long pilot, a
// machine-wide pilot queues, and a small short pilot behind it either
// waits for both (FIFO) or backfills immediately (EASY).
func AblationBackfill() (*BackfillResult, error) {
	res := &BackfillResult{}
	for _, policy := range []batch.Policy{batch.FIFO, batch.EASYBackfill} {
		v := vclock.NewVirtual()
		cfg := pilot.DefaultConfig()
		cfg.BatchPolicy = policy
		sess := pilot.NewSession(v, kernels.NewRegistry(), cfg)
		pm := pilot.NewPilotManager(sess)
		row := BackfillRow{Policy: policy.String()}
		var err error
		v.Run(func() {
			// Hog: 340 of SuperMIC's 360 nodes for 2h.
			hog, e := pm.Submit(pilot.PilotDescription{
				Resource: "lsu.supermic", Cores: 340 * 20, Walltime: 2 * time.Hour,
			})
			if e != nil {
				err = e
				return
			}
			hog.WaitActive()
			// Big: all 360 nodes; must wait for the hog to end.
			big, e := pm.Submit(pilot.PilotDescription{
				Resource: "lsu.supermic", Cores: 360 * 20, Walltime: time.Hour,
			})
			if e != nil {
				err = e
				return
			}
			// Small: 1 node, 30 min; fits now and ends before the hog.
			small, e := pm.Submit(pilot.PilotDescription{
				Resource: "lsu.supermic", Cores: 20, Walltime: 30 * time.Minute,
			})
			if e != nil {
				err = e
				return
			}
			big.WaitActive()
			row.BigArrivalSec = v.Now().Seconds()
			small.WaitActive()
			row.SmallWaitSec = small.QueueWait().Seconds()
			small.Cancel()
			big.Cancel()
			hog.Cancel()
		})
		if err != nil {
			return nil, fmt.Errorf("ablation backfill %v: %w", policy, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the comparison.
func (r *BackfillResult) Table() string {
	headers := []string{"batch_policy", "small_pilot_wait_s", "big_pilot_active_at_s"}
	var rows [][]string
	for _, w := range r.Rows {
		rows = append(rows, []string{w.Policy, f1(w.SmallWaitSec), f1(w.BigArrivalSec)})
	}
	return table(headers, rows)
}

// Check asserts EASY backfill starts the small pilot much earlier than
// FIFO without delaying the big pilot.
func (r *BackfillResult) Check() error {
	if len(r.Rows) != 2 {
		return fmt.Errorf("ablation backfill: want 2 rows, got %d", len(r.Rows))
	}
	fifo, easy := r.Rows[0], r.Rows[1]
	if easy.SmallWaitSec >= fifo.SmallWaitSec {
		return fmt.Errorf("ablation backfill: EASY wait %.1fs not shorter than FIFO %.1fs",
			easy.SmallWaitSec, fifo.SmallWaitSec)
	}
	// EASY must not delay the head job materially (< 1% tolerance for
	// control latencies).
	if easy.BigArrivalSec > fifo.BigArrivalSec*1.01 {
		return fmt.Errorf("ablation backfill: EASY delayed the big pilot (%.1fs vs %.1fs)",
			easy.BigArrivalSec, fifo.BigArrivalSec)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Ablation 3: unit-manager dispatch cost

// DispatchRow reports pattern overhead for one per-unit dispatch cost.
type DispatchRow struct {
	PerUnitMs       float64
	Tasks           int
	PatternOverhead float64
	TTCSec          float64
}

// DispatchResult holds the sweep.
type DispatchResult struct {
	Rows []DispatchRow
}

// AblationDispatch quantifies how the client-side per-unit submission
// cost drives the pattern overhead (the design reason EnTK submits in
// bulk): the 192-task character-count app with 1, 10, and 50 ms per-unit
// costs.
func AblationDispatch() (*DispatchResult, error) {
	const n = 192
	res := &DispatchResult{}
	for _, perUnit := range []time.Duration{time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond} {
		v := vclock.NewVirtual()
		rcfg := pilot.DefaultConfig()
		rcfg.UMSubmitPerUnit = perUnit
		h, err := core.NewResourceHandle("xsede.comet", n, 10000*time.Hour, core.Config{
			Clock:   v,
			Runtime: rcfg,
		})
		if err != nil {
			return nil, err
		}
		var rep *core.Report
		var runErr error
		v.Run(func() {
			rep, runErr = h.Execute(charCountPattern("sal", n))
		})
		if runErr != nil {
			return nil, fmt.Errorf("ablation dispatch %v: %w", perUnit, runErr)
		}
		res.Rows = append(res.Rows, DispatchRow{
			PerUnitMs:       float64(perUnit) / float64(time.Millisecond),
			Tasks:           rep.Tasks,
			PatternOverhead: rep.PatternOverhead.Seconds(),
			TTCSec:          rep.TTC.Seconds(),
		})
	}
	return res, nil
}

// Table renders the sweep.
func (r *DispatchResult) Table() string {
	headers := []string{"per_unit_ms", "tasks", "pattern_ovh_s", "ttc_s"}
	var rows [][]string
	for _, w := range r.Rows {
		rows = append(rows, []string{f1(w.PerUnitMs), di(w.Tasks), f2(w.PatternOverhead), f1(w.TTCSec)})
	}
	return table(headers, rows)
}

// Check asserts the pattern overhead scales with the dispatch cost.
func (r *DispatchResult) Check() error {
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].PatternOverhead <= r.Rows[i-1].PatternOverhead {
			return fmt.Errorf("ablation dispatch: overhead did not grow with per-unit cost")
		}
	}
	if len(r.Rows) < 2 {
		return fmt.Errorf("ablation dispatch: need at least 2 rows")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Ablation 4: agent placement (first-fit vs best-fit)

// PlacementRow reports TTC for one agent placement strategy.
type PlacementRow struct {
	Placement string
	TTCSec    float64
}

// PlacementResult holds the comparison.
type PlacementResult struct {
	Rows []PlacementRow
}

// AblationAgentScheduler compares first-fit and best-fit node packing in
// the agent for a fragmentation-prone mix of wide and narrow tasks on a
// small pilot.
func AblationAgentScheduler() (*PlacementResult, error) {
	res := &PlacementResult{}
	for _, placement := range []pilot.Placement{pilot.FirstFit, pilot.BestFit} {
		v := vclock.NewVirtual()
		rcfg := pilot.DefaultConfig()
		rcfg.Agent = placement
		h, err := core.NewResourceHandle("lsu.supermic", 4*20, 10000*time.Hour, core.Config{
			Clock:   v,
			Runtime: rcfg,
		})
		if err != nil {
			return nil, err
		}
		var rep *core.Report
		var runErr error
		v.Run(func() {
			rep, runErr = h.Execute(&core.EnsembleOfPipelines{
				Pipelines: 24,
				Stages:    1,
				StageKernel: func(stage, pipe int) *core.Kernel {
					// Mix of 12-core and 5-core tasks on 20-core nodes.
					cores := 5
					if pipe%2 == 0 {
						cores = 12
					}
					return &core.Kernel{
						Name:   "misc.sleep",
						Params: map[string]float64{"seconds": 30},
						Cores:  cores,
						MPI:    true,
					}
				},
			})
		})
		if runErr != nil {
			return nil, fmt.Errorf("ablation placement %v: %w", placement, runErr)
		}
		res.Rows = append(res.Rows, PlacementRow{Placement: placement.String(), TTCSec: rep.TTC.Seconds()})
	}
	return res, nil
}

// Table renders the comparison.
func (r *PlacementResult) Table() string {
	headers := []string{"agent_placement", "ttc_s"}
	var rows [][]string
	for _, w := range r.Rows {
		rows = append(rows, []string{w.Placement, f1(w.TTCSec)})
	}
	return table(headers, rows)
}

// Check asserts both strategies complete and best-fit is no worse than
// first-fit on this fragmentation-prone mix.
func (r *PlacementResult) Check() error {
	if len(r.Rows) != 2 {
		return fmt.Errorf("ablation placement: want 2 rows, got %d", len(r.Rows))
	}
	ff, bf := r.Rows[0].TTCSec, r.Rows[1].TTCSec
	if ff <= 0 || bf <= 0 {
		return fmt.Errorf("ablation placement: non-positive TTC")
	}
	if bf > ff*1.05 {
		return fmt.Errorf("ablation placement: best-fit (%.1fs) materially worse than first-fit (%.1fs)", bf, ff)
	}
	return nil
}
