package workload

import (
	"reflect"
	"testing"

	"entk/internal/profile"
	"entk/internal/vclock"
)

// TestStressEoPSweep runs the full 10k-pipeline EoP stress sweep and
// verifies its figure checks — the acceptance gate that the indexed
// scheduler sustains 10k+ tasks under go test.
func TestStressEoPSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("stress tier skipped in -short mode")
	}
	res, err := StressEoP(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Errorf("%v\n%s", err, res.Table())
	}
}

// TestStressEESweep runs the EE weak-scaling stress sweep up to the
// oversubscribed 10240-replica point and verifies its figure checks.
func TestStressEESweep(t *testing.T) {
	if testing.Short() {
		t.Skip("stress tier skipped in -short mode")
	}
	res, err := StressEE(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Errorf("%v\n%s", err, res.Table())
	}
}

// TestStressEoPSmall keeps a scaled-down stress point in the -short tier
// so the path stays covered everywhere.
func TestStressEoPSmall(t *testing.T) {
	res, err := StressEoP([]int{512})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Errorf("%v\n%s", err, res.Table())
	}
}

// skip100k gates the heavyweight 100k-tier sweeps: they are skipped in
// -short mode like the 10k tier, and under the race detector (whose
// 10-20x slowdown would dominate the whole CI run — the dedicated
// non-race smoke row covers the tier, and the profiler's concurrency is
// gated by its own -race hammer suite).
func skip100k(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("100k tier skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("100k tier skipped under -race (covered by the non-race CI smoke row)")
	}
}

// TestStress100kSweep runs the full 100k-task sweep and verifies its
// TTC-decomposition golden checks — the acceptance gate that the columnar
// profiler sustains 100k+ tasks under go test.
func TestStress100kSweep(t *testing.T) {
	skip100k(t)
	res, err := Stress100k(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Errorf("%v\n%s", err, res.Table())
	}
}

// TestStress100kEngineParity runs one 100k-tier point on both vclock
// engines and asserts the simulated columns (TTC decomposition, task
// counts) are byte-identical — the tier-level extension of
// TestEngineReportParity to 100k tasks.
func TestStress100kEngineParity(t *testing.T) {
	skip100k(t)
	sizes := []int{102400}
	handoff, err := Stress100kOn(sizes, vclock.EngineHandoff)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Stress100kOn(sizes, vclock.EngineRef)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(handoff.SimColumns(), ref.SimColumns()) {
		t.Errorf("sim columns diverge between engines:\nhandoff:\n%s\nref:\n%s",
			handoff.Table(), ref.Table())
	}
	if err := handoff.Check(); err != nil {
		t.Errorf("%v\n%s", err, handoff.Table())
	}
}

// TestStress100kLayoutParity runs one 100k-tier point on both profiler
// layouts and asserts the simulated columns and the figure Check verdict
// agree — the stress-tier leg of the layout-parity suite, proving the
// columnar store changes no measured quantity at the scale it was built
// for.
func TestStress100kLayoutParity(t *testing.T) {
	skip100k(t)
	sizes := []int{102400}
	runWith := func(l profile.Layout) *Stress100kResult {
		var res *Stress100kResult
		err := WithProfLayout(l, func() error {
			var err error
			res, err = Stress100k(sizes)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	columnar := runWith(profile.LayoutColumnar)
	ref := runWith(profile.LayoutRef)
	if !reflect.DeepEqual(columnar.SimColumns(), ref.SimColumns()) {
		t.Errorf("sim columns diverge between profiler layouts:\ncolumnar:\n%s\nref:\n%s",
			columnar.Table(), ref.Table())
	}
	if err := columnar.Check(); err != nil {
		t.Errorf("columnar: %v\n%s", err, columnar.Table())
	}
	if err := ref.Check(); err != nil {
		t.Errorf("ref: %v\n%s", err, ref.Table())
	}
}

// TestStress100kPendingQueueParity runs one 100k-tier point on both
// pending-queue implementations and asserts the simulated columns are
// byte-identical — the stress-tier leg of the queue-parity suite,
// proving the segmented queue changes no measured quantity at the scale
// it was built for (and, transitively, that the BENCH columns recorded
// by earlier PRs are preserved).
func TestStress100kPendingQueueParity(t *testing.T) {
	skip100k(t)
	sizes := []int{102400}
	runWith := func(ref bool) *Stress100kResult {
		var res *Stress100kResult
		err := WithPendingRef(ref, func() error {
			var err error
			res, err = Stress100k(sizes)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seg := runWith(false)
	fifo := runWith(true)
	if !reflect.DeepEqual(seg.SimColumns(), fifo.SimColumns()) {
		t.Errorf("sim columns diverge between pending queues:\nsegmented:\n%s\nreference:\n%s",
			seg.Table(), fifo.Table())
	}
	if err := seg.Check(); err != nil {
		t.Errorf("segmented: %v\n%s", err, seg.Table())
	}
	if err := fifo.Check(); err != nil {
		t.Errorf("reference: %v\n%s", err, fifo.Table())
	}
}

// TestStressPendingQueueParityFigureChecks is the cheap in-short leg of
// the queue parity: the 10k-tier 512-point rows must agree between the
// segmented queue and the seed FIFO reference up to wall-clock columns.
func TestStressPendingQueueParityFigureChecks(t *testing.T) {
	runWith := func(ref bool) *StressEoPResult {
		var res *StressEoPResult
		err := WithPendingRef(ref, func() error {
			var err error
			res, err = StressEoP([]int{512})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seg := runWith(false)
	fifo := runWith(true)
	for i := range seg.Rows {
		a, b := seg.Rows[i], fifo.Rows[i]
		a.WallMS, b.WallMS = 0, 0
		a.UnitsPerSecWall, b.UnitsPerSecWall = 0, 0
		if a != b {
			t.Errorf("row %d diverges between pending queues:\nsegmented: %+v\nreference: %+v", i, a, b)
		}
	}
	if err := seg.Check(); err != nil {
		t.Errorf("segmented: %v", err)
	}
	if err := fifo.Check(); err != nil {
		t.Errorf("reference: %v", err)
	}
}

// TestStress100kSmoke keeps a half-machine 100k-tier point runnable
// everywhere (both engines, no skips beyond -short): the CI smoke row.
func TestStress100kSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("stress tier skipped in -short mode")
	}
	for _, eng := range []vclock.Engine{vclock.EngineHandoff, vclock.EngineRef} {
		res, err := Stress100kOn([]int{32768}, eng)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if err := res.Check(); err != nil {
			t.Errorf("%v: %v\n%s", eng, err, res.Table())
		}
	}
}

// TestStressLayoutParityFigureChecks runs the in-short 10k EoP point on
// both profiler layouts and asserts rows and Check results agree — the
// figure-level layout parity kept cheap enough for the -short tier.
func TestStressLayoutParityFigureChecks(t *testing.T) {
	runWith := func(l profile.Layout) *StressEoPResult {
		var res *StressEoPResult
		err := WithProfLayout(l, func() error {
			var err error
			res, err = StressEoP([]int{512})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	columnar := runWith(profile.LayoutColumnar)
	ref := runWith(profile.LayoutRef)
	for i := range columnar.Rows {
		a, b := columnar.Rows[i], ref.Rows[i]
		a.WallMS, b.WallMS = 0, 0
		a.UnitsPerSecWall, b.UnitsPerSecWall = 0, 0
		if a != b {
			t.Errorf("row %d diverges between layouts:\ncolumnar: %+v\nref: %+v", i, a, b)
		}
	}
	if err := columnar.Check(); err != nil {
		t.Errorf("columnar: %v", err)
	}
	if err := ref.Check(); err != nil {
		t.Errorf("ref: %v", err)
	}
}
