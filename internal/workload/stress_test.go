package workload

import (
	"testing"
)

// TestStressEoPSweep runs the full 10k-pipeline EoP stress sweep and
// verifies its figure checks — the acceptance gate that the indexed
// scheduler sustains 10k+ tasks under go test.
func TestStressEoPSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("stress tier skipped in -short mode")
	}
	res, err := StressEoP(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Errorf("%v\n%s", err, res.Table())
	}
}

// TestStressEESweep runs the EE weak-scaling stress sweep up to the
// oversubscribed 10240-replica point and verifies its figure checks.
func TestStressEESweep(t *testing.T) {
	if testing.Short() {
		t.Skip("stress tier skipped in -short mode")
	}
	res, err := StressEE(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Errorf("%v\n%s", err, res.Table())
	}
}

// TestStressEoPSmall keeps a scaled-down stress point in the -short tier
// so the path stays covered everywhere.
func TestStressEoPSmall(t *testing.T) {
	res, err := StressEoP([]int{512})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Errorf("%v\n%s", err, res.Table())
	}
}
