//go:build !race

package workload

// raceEnabled reports whether the race detector is compiled in; the
// heavyweight 100k stress sweeps skip under it (the dedicated CI smoke
// rows cover the tier without the detector's 10-20x slowdown, and the
// profiler's concurrency is gated by its own -race hammer suite).
const raceEnabled = false
