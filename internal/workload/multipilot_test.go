package workload

import (
	"reflect"
	"testing"

	"entk/internal/profile"
	"entk/internal/vclock"
)

// TestMultiPilotCampaign runs the two-machine campaign on both engines
// and verifies its golden checks — exact tag routing, per-pilot
// utilization consistency, cross-machine concurrency. It is cheap
// enough for every tier (including -short and -race).
func TestMultiPilotCampaign(t *testing.T) {
	for _, eng := range []vclock.Engine{vclock.EngineHandoff, vclock.EngineRef} {
		res, err := MultiPilotCampaignOn(nil, eng)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Check(); err != nil {
			t.Errorf("engine %v: %v\n%s", eng, err, res.Table())
		}
	}
}

// TestMultiPilotEngineParity asserts the two-machine campaign's
// simulated columns — per-pipeline rows, the campaign aggregate, and
// the per-pilot utilization rows — are byte-identical across vclock
// engines.
func TestMultiPilotEngineParity(t *testing.T) {
	a, err := MultiPilotCampaignOn(nil, vclock.EngineHandoff)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MultiPilotCampaignOn(nil, vclock.EngineRef)
	if err != nil {
		t.Fatal(err)
	}
	aRows, aUtil := a.SimColumns()
	bRows, bUtil := b.SimColumns()
	if !reflect.DeepEqual(aRows, bRows) || !reflect.DeepEqual(aUtil, bUtil) {
		t.Errorf("multipilot sim columns diverge across engines:\nhandoff:\n%s\nref:\n%s",
			a.Table(), b.Table())
	}
}

// TestMultiPilotLayoutParity runs the campaign on the seed profiler
// layout and requires identical simulated columns.
func TestMultiPilotLayoutParity(t *testing.T) {
	base, err := MultiPilotCampaignOn(nil, vclock.EngineHandoff)
	if err != nil {
		t.Fatal(err)
	}
	var ref *MultiPilotResult
	err = WithProfLayout(profile.LayoutRef, func() error {
		var err error
		ref, err = MultiPilotCampaignOn(nil, vclock.EngineHandoff)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	baseRows, baseUtil := base.SimColumns()
	refRows, refUtil := ref.SimColumns()
	if !reflect.DeepEqual(baseRows, refRows) || !reflect.DeepEqual(baseUtil, refUtil) {
		t.Errorf("multipilot sim columns diverge across profiler layouts:\ncolumnar:\n%s\nref:\n%s",
			base.Table(), ref.Table())
	}
}
