package workload

import (
	"fmt"
	"math"

	"entk/internal/cluster"
	"entk/internal/pilot"
	"entk/internal/vclock"
)

// The oversubscribed tier closes the ROADMAP item the mixed tier left
// open: a heterogeneous concurrent campaign whose peak demand exceeds
// the machine, so stages split across multiple scheduling waves and the
// pipelines genuinely contend for cores. Exact accounting (task counts,
// pattern overhead, queue-wait model) survives oversubscription and is
// still pinned exactly; the TTC shapes depend on how the contending
// waves interleave, so their golden checks are correspondingly looser —
// lower-bounded by the per-pipeline critical path, upper-bounded by a
// work-conservation argument.

// Stress100kOversubPlan is the default oversubscribed campaign on the
// 65536-core sim.stress64k pilot: peak concurrent demand 90112 cores
// (1.375x the machine), 159744 tasks total. Tasks run 900s — long
// enough that the wide pipeline's ~492s serialized submission stagger
// does not drain the early pipelines before the late ones arrive, so
// the demand peaks genuinely overlap and stages split across waves
// (with the tier-default 30s tasks the stagger alone serializes the
// campaign under the machine).
var Stress100kOversubPlan = []StressMixedPipeline{
	{Name: "wide", Width: 49152, Depth: 2, CoresPer: 1, Seconds: 900},
	{Name: "mid", Width: 24576, Depth: 2, CoresPer: 1, Seconds: 900},
	{Name: "narrow", Width: 4096, Depth: 3, CoresPer: 4, Seconds: 900},
}

// stressOversubSmoke is the scaled-down configuration the -short/CI
// smoke runs: shape-identical oversubscription (1.375x) on a 1024-core
// sim.stress8k pilot.
var (
	stressOversubSmokePlan = []StressMixedPipeline{
		{Name: "wide", Width: 768, Depth: 2, CoresPer: 1},
		{Name: "mid", Width: 384, Depth: 2, CoresPer: 1},
		{Name: "narrow", Width: 64, Depth: 3, CoresPer: 4},
	}
	stressOversubSmokeCores = 1024
)

// Stress100kOversub runs the oversubscribed campaign on the default
// engine.
func Stress100kOversub(plan []StressMixedPipeline) (*Stress100kMixedResult, error) {
	return Stress100kOversubOn(plan, DefaultEngine)
}

// Stress100kOversubOn is Stress100kOversub on an explicit vclock engine.
func Stress100kOversubOn(plan []StressMixedPipeline, eng vclock.Engine) (*Stress100kMixedResult, error) {
	if plan == nil {
		plan = Stress100kOversubPlan
	}
	return stressCampaignOn(Stress100kMachine, Stress100kCores, plan, eng)
}

// stressOversubSmokeOn runs the smoke-scale oversubscribed campaign.
func stressOversubSmokeOn(eng vclock.Engine) (*Stress100kMixedResult, error) {
	return stressCampaignOn(StressMachine, stressOversubSmokeCores, stressOversubSmokePlan, eng)
}

// CheckOversub asserts the oversubscribed tier's golden shapes — the
// looser sibling of Check, for plans whose peak demand exceeds the
// pilot:
//
//   - the plan is actually oversubscribed (otherwise Check applies);
//   - exact accounting still holds: every planned task ran, each
//     pipeline's pattern overhead is exactly its task count times the
//     client-side submission cost, and the queue-wait model is
//     unchanged — oversubscription perturbs scheduling, not accounting;
//   - each pipeline's execution time is lower-bounded by its critical
//     path (depth waves of the per-task runtime) and at least one
//     pipeline paid a genuine extra wave (a stage split);
//   - the campaign TTC equals the slowest pipeline's and beats the
//     serialized sum (the pipelines still overlapped), and it is
//     upper-bounded by twice the work-conservation bound — the total
//     core-seconds pushed through the machine plus the deepest
//     pipeline's critical path and the campaign's submission cost.
func (r *Stress100kMixedResult) CheckOversub() error {
	if len(r.Pipelines) != len(r.Plan) || len(r.Plan) < 2 {
		return fmt.Errorf("stress oversub: %d pipeline rows for %d plan entries",
			len(r.Pipelines), len(r.Plan))
	}
	m, err := cluster.Lookup(r.Machine)
	if err != nil {
		return err
	}
	perUnit := pilot.DefaultConfig().UMSubmitPerUnit.Seconds()
	peak, wantTotal := 0, 0
	coreSec, maxCritical, maxSeconds := 0.0, 0.0, 0.0
	var maxTTC, sumTTC, maxExtra float64
	for i, pp := range r.Plan {
		w := r.Pipelines[i]
		wantTasks := pp.Width * pp.Depth
		wantTotal += wantTasks
		peak += pp.Width * pp.CoresPer
		coreSec += float64(wantTasks*pp.CoresPer) * pp.taskSeconds()
		if cp := float64(pp.Depth) * pp.taskSeconds(); cp > maxCritical {
			maxCritical = cp
		}
		if pp.taskSeconds() > maxSeconds {
			maxSeconds = pp.taskSeconds()
		}
		if w.Tasks != wantTasks {
			return fmt.Errorf("stress oversub: pipeline %s ran %d tasks, want %d", w.Name, w.Tasks, wantTasks)
		}
		wantOvh := float64(w.Tasks) * perUnit
		if math.Abs(w.PatternOvhSec-wantOvh) > 1e-6*wantOvh+1e-9 {
			return fmt.Errorf("stress oversub: pipeline %s pattern overhead %.3fs, want exactly %.3fs",
				w.Name, w.PatternOvhSec, wantOvh)
		}
		// Critical-path lower bound: depth barriers of at least one
		// full wave each. The one-wave upper bound of the mixed tier
		// does NOT apply — that is the point of this tier.
		wantExecMin := float64(pp.Depth) * pp.taskSeconds()
		if w.ExecSec < wantExecMin {
			return fmt.Errorf("stress oversub: pipeline %s exec %.1fs below its %.1fs critical path",
				w.Name, w.ExecSec, wantExecMin)
		}
		if extra := w.ExecSec - wantExecMin; extra > maxExtra {
			maxExtra = extra
		}
		if w.TTCSec < w.ExecSec+w.PatternOvhSec {
			return fmt.Errorf("stress oversub: pipeline %s TTC %.1fs < exec %.1fs + overhead %.1fs",
				w.Name, w.TTCSec, w.ExecSec, w.PatternOvhSec)
		}
		if w.TTCSec > maxTTC {
			maxTTC = w.TTCSec
		}
		sumTTC += w.TTCSec
	}
	if peak <= r.Cores {
		return fmt.Errorf("stress oversub: plan's peak demand %d fits the %d-core pilot — not oversubscribed",
			peak, r.Cores)
	}
	// A stage somewhere must have split into multiple waves: some
	// pipeline's exec span exceeds its critical path by a sizable
	// fraction of a wave.
	if maxExtra < 0.5*maxSeconds {
		return fmt.Errorf("stress oversub: no pipeline shows a split stage (max excess %.1fs over the critical path)",
			maxExtra)
	}
	c := r.Campaign
	if c.Tasks != wantTotal {
		return fmt.Errorf("stress oversub: campaign ran %d tasks, want %d", c.Tasks, wantTotal)
	}
	wantOvh := float64(wantTotal) * perUnit
	if math.Abs(c.PatternOvhSec-wantOvh) > 1e-6*wantOvh+1e-9 {
		return fmt.Errorf("stress oversub: campaign pattern overhead %.3fs, want exactly %.3fs",
			c.PatternOvhSec, wantOvh)
	}
	if math.Abs(c.TTCSec-maxTTC) > 1e-9 {
		return fmt.Errorf("stress oversub: campaign TTC %.3fs != slowest pipeline %.3fs", c.TTCSec, maxTTC)
	}
	if c.TTCSec >= sumTTC {
		return fmt.Errorf("stress oversub: campaign TTC %.1fs not overlapping pipelines (serialized sum %.1fs)",
			c.TTCSec, sumTTC)
	}
	// Work-conservation upper bound, doubled for barrier and launcher
	// slack: the machine can drain coreSec in coreSec/cores seconds if
	// kept busy, plus the deepest critical path and the slowest
	// pipeline's serialized submission cost.
	bound := 2 * (coreSec/float64(r.Cores) + maxCritical + c.PatternOvhSec + 10)
	if c.TTCSec > bound {
		return fmt.Errorf("stress oversub: campaign TTC %.1fs exceeds the work-conservation bound %.1fs",
			c.TTCSec, bound)
	}
	// Queue wait: unchanged by oversubscription — the shared pilot's
	// full model delay with the per-node component dominating.
	nodes := m.NodesFor(r.Cores)
	baseWait := m.QueueWaitBase.Seconds()
	perNodeWait := float64(nodes) * m.QueueWaitPerNode.Seconds()
	if r.QueueWaitSec < baseWait+perNodeWait || r.QueueWaitSec > baseWait+perNodeWait+1 {
		return fmt.Errorf("stress oversub: queue wait %.1fs, want ~%.1fs (base %.0fs + %d nodes)",
			r.QueueWaitSec, baseWait+perNodeWait, baseWait, nodes)
	}
	return nil
}
