package workload

import (
	"fmt"
	"math"
	"strings"
	"time"

	"entk/internal/core"
	"entk/internal/pilot"
	"entk/internal/vclock"
)

// The multi-pilot tier is the resource-binding redesign's acceptance
// scenario: one heterogeneous campaign — 1-core pipelines and a
// 4-core-MPI pipeline — running through one AppManager on an
// entk.ResourceSet of two pilots on different machines, split by
// tag-affinity placement (the MPI tasks land on the 16-core-node
// machine provisioned for them). The campaign is written once against
// the graph API; where each task runs is decided at dispatch time, and
// the campaign report's per-pilot utilization columns show the split.

// Multi-pilot campaign shape: a "cpu" pilot on Comet carries the
// single-core ensembles, an "mpi" pilot on Stampede (16-core nodes)
// carries the 4-core MPI ensemble.
const (
	MultiPilotCPUMachine = "xsede.comet"
	MultiPilotCPUCores   = 1536
	MultiPilotMPIMachine = "xsede.stampede"
	MultiPilotMPICores   = 2048
)

// MultiPilotPlan is the default campaign: two tagged single-core
// pipelines and one tagged 4-core-MPI pipeline, 5120 tasks total.
var MultiPilotPlan = []StressMixedPipeline{
	{Name: "serial-a", Width: 1024, Depth: 2, CoresPer: 1, Tags: []string{"cpu"}},
	{Name: "serial-b", Width: 512, Depth: 2, CoresPer: 1, Tags: []string{"cpu"}},
	{Name: "mpi", Width: 512, Depth: 4, CoresPer: 4, Tags: []string{"mpi"}},
}

// MultiPilotUtilRow is one pilot's utilization column set, the rows
// entk-bench -multipilot emits into the -json matrix.
type MultiPilotUtilRow struct {
	Pilot       int     `json:"pilot"`
	Resource    string  `json:"resource"`
	Cores       int     `json:"cores"`
	Tags        string  `json:"tags"`
	Units       int     `json:"units"`
	CoreBusySec float64 `json:"core_busy_s"`
	Utilization float64 `json:"utilization"`
}

// MultiPilotResult holds the two-machine campaign outcome: the familiar
// mixed-tier rows plus one utilization row per pilot.
type MultiPilotResult struct {
	Plan            []StressMixedPipeline
	Placement       string
	Campaign        Stress100kMixedRow
	Pipelines       []Stress100kMixedRow
	Pilots          []MultiPilotUtilRow
	QueueWaitSec    float64
	AgentStartupSec float64
	CoreOvhSec      float64
}

// MultiPilotCampaign runs the two-machine campaign on the default
// engine.
func MultiPilotCampaign(plan []StressMixedPipeline) (*MultiPilotResult, error) {
	return MultiPilotCampaignOn(plan, DefaultEngine)
}

// MultiPilotCampaignOn is MultiPilotCampaign on an explicit vclock
// engine.
func MultiPilotCampaignOn(plan []StressMixedPipeline, eng vclock.Engine) (*MultiPilotResult, error) {
	if plan == nil {
		plan = MultiPilotPlan
	}
	v := vclock.NewVirtualEngine(eng)
	rcfg := pilot.DefaultConfig()
	rcfg.ProfLayout = DefaultProfLayout
	rcfg.PendingRef = DefaultPendingRef
	rs, err := core.NewResourceSet([]core.PilotSpec{
		{Resource: MultiPilotCPUMachine, Cores: MultiPilotCPUCores, Walltime: 10000 * time.Hour, Tags: []string{"cpu"}},
		{Resource: MultiPilotMPIMachine, Cores: MultiPilotMPICores, Walltime: 10000 * time.Hour, Tags: []string{"mpi"}},
	}, core.Config{Clock: v, Exec: DefaultExec, Runtime: rcfg})
	if err != nil {
		return nil, err
	}
	rs.Placement = pilot.PlaceTagAffinity(nil)

	t0 := time.Now()
	var camp *core.CampaignReport
	var runErr error
	v.Run(func() {
		if runErr = rs.Allocate(); runErr != nil {
			return
		}
		camp, runErr = core.NewAppManager(rs).Run(buildMixedPipelines(plan)...)
		if derr := rs.Deallocate(); runErr == nil {
			runErr = derr
		}
	})
	if runErr != nil {
		return nil, fmt.Errorf("multipilot campaign: %w", runErr)
	}
	wall := time.Since(t0)
	camp.Campaign.CoreOverhead = rs.ControlOverhead()

	res := &MultiPilotResult{
		Plan:            plan,
		Placement:       rs.Placement.Name(),
		QueueWaitSec:    camp.Campaign.QueueWait.Seconds(),
		AgentStartupSec: camp.Campaign.AgentStartup.Seconds(),
		CoreOvhSec:      camp.Campaign.CoreOverhead.Seconds(),
	}
	row := func(name string, pp *StressMixedPipeline, rep *core.Report) Stress100kMixedRow {
		r := Stress100kMixedRow{
			Name:          name,
			Tasks:         rep.Tasks,
			TTCSec:        rep.TTC.Seconds(),
			ExecSec:       rep.ExecTime().Seconds(),
			PatternOvhSec: rep.PatternOverhead.Seconds(),
		}
		if pp != nil {
			r.Width, r.Depth, r.CoresPer = pp.Width, pp.Depth, pp.CoresPer
		}
		return r
	}
	for i := range plan {
		res.Pipelines = append(res.Pipelines, row(plan[i].Name, &plan[i], camp.Pipelines[i]))
	}
	res.Campaign = row("campaign", nil, camp.Campaign)
	res.Campaign.WallMS = float64(wall) / float64(time.Millisecond)
	res.Campaign.UnitsPerSecWall = float64(camp.Campaign.Tasks) / wall.Seconds()
	for _, u := range camp.Pilots {
		res.Pilots = append(res.Pilots, MultiPilotUtilRow{
			Pilot:       u.Pilot,
			Resource:    u.Resource,
			Cores:       u.Cores,
			Tags:        strings.Join(u.Tags, ","),
			Units:       u.Units,
			CoreBusySec: u.CoreBusy.Seconds(),
			Utilization: u.Utilization,
		})
	}
	return res, nil
}

// Table renders the campaign rows and the per-pilot utilization
// columns.
func (r *MultiPilotResult) Table() string {
	headers := []string{"pipeline", "width", "depth", "cores/task", "tasks",
		"ttc_s", "exec_s", "pattern_ovh_s", "wall_ms", "units/s(wall)"}
	var rows [][]string
	for _, w := range append(append([]Stress100kMixedRow(nil), r.Pipelines...), r.Campaign) {
		width, depth, cores := "-", "-", "-"
		if w.Width > 0 {
			width, depth, cores = di(w.Width), di(w.Depth), di(w.CoresPer)
		}
		wall, ups := "-", "-"
		if w.WallMS > 0 {
			wall, ups = f1(w.WallMS), f1(w.UnitsPerSecWall)
		}
		rows = append(rows, []string{
			w.Name, width, depth, cores, di(w.Tasks),
			f1(w.TTCSec), f1(w.ExecSec), f1(w.PatternOvhSec), wall, ups,
		})
	}
	out := table(headers, rows)

	uheaders := []string{"pilot", "resource", "tags", "cores", "units", "core_busy_s", "utilization"}
	var urows [][]string
	for _, u := range r.Pilots {
		urows = append(urows, []string{
			di(u.Pilot), u.Resource, u.Tags, di(u.Cores), di(u.Units),
			f1(u.CoreBusySec), fmt.Sprintf("%.3f", u.Utilization),
		})
	}
	return out + table(uheaders, urows)
}

// Check asserts the multi-pilot campaign's golden shapes:
//
//   - exact accounting: every planned task ran, and each pipeline's
//     pattern overhead is exactly its task count times the client-side
//     submission cost (the shared batcher changes wall cost, not the
//     simulated submission cost);
//   - exact tag routing: every task of a tagged pipeline executed on
//     the pilot carrying its tag — the per-pilot Units columns equal
//     the per-tag task sums, and both pilots were genuinely used;
//   - per-pilot utilization is consistent with the units each pilot ran
//     (core-busy equals the tagged tasks' core-seconds exactly — no
//     retries in this tier);
//   - concurrency: the campaign TTC equals the slowest pipeline's TTC
//     and beats the serialized sum, across machines.
func (r *MultiPilotResult) Check() error {
	if len(r.Pipelines) != len(r.Plan) || len(r.Pilots) != 2 {
		return fmt.Errorf("multipilot: %d pipeline rows for %d plan entries, %d pilot rows",
			len(r.Pipelines), len(r.Plan), len(r.Pilots))
	}
	perUnit := pilot.DefaultConfig().UMSubmitPerUnit.Seconds()
	wantTotal := 0
	tagUnits := map[string]int{}
	tagCoreSec := map[string]float64{}
	var maxTTC, sumTTC float64
	for i, pp := range r.Plan {
		w := r.Pipelines[i]
		wantTasks := pp.Width * pp.Depth
		wantTotal += wantTasks
		for _, tag := range pp.Tags {
			tagUnits[tag] += wantTasks
			tagCoreSec[tag] += float64(wantTasks*pp.CoresPer) * pp.taskSeconds()
		}
		if w.Tasks != wantTasks {
			return fmt.Errorf("multipilot: pipeline %s ran %d tasks, want %d", w.Name, w.Tasks, wantTasks)
		}
		wantOvh := float64(w.Tasks) * perUnit
		if math.Abs(w.PatternOvhSec-wantOvh) > 1e-6*wantOvh+1e-9 {
			return fmt.Errorf("multipilot: pipeline %s pattern overhead %.3fs, want exactly %.3fs",
				w.Name, w.PatternOvhSec, wantOvh)
		}
		if w.TTCSec > maxTTC {
			maxTTC = w.TTCSec
		}
		sumTTC += w.TTCSec
	}
	if r.Campaign.Tasks != wantTotal {
		return fmt.Errorf("multipilot: campaign ran %d tasks, want %d", r.Campaign.Tasks, wantTotal)
	}
	for _, u := range r.Pilots {
		want, ok := tagUnits[u.Tags]
		if !ok {
			return fmt.Errorf("multipilot: pilot %d (%s) carries tag %q no pipeline requested",
				u.Pilot, u.Resource, u.Tags)
		}
		if u.Units != want {
			return fmt.Errorf("multipilot: pilot %d (%s, tag %q) executed %d units, want %d — tag routing leaked",
				u.Pilot, u.Resource, u.Tags, u.Units, want)
		}
		wantBusy := tagCoreSec[u.Tags]
		if math.Abs(u.CoreBusySec-wantBusy) > 1e-6*wantBusy+1e-9 {
			return fmt.Errorf("multipilot: pilot %d core-busy %.1fs, want exactly %.1fs",
				u.Pilot, u.CoreBusySec, wantBusy)
		}
		if u.Units == 0 || u.Utilization <= 0 {
			return fmt.Errorf("multipilot: pilot %d (%s) unused (units=%d, util=%.3f)",
				u.Pilot, u.Resource, u.Units, u.Utilization)
		}
		if u.Utilization > 1.0 {
			return fmt.Errorf("multipilot: pilot %d utilization %.3f > 1", u.Pilot, u.Utilization)
		}
	}
	if math.Abs(r.Campaign.TTCSec-maxTTC) > 1e-9 {
		return fmt.Errorf("multipilot: campaign TTC %.3fs != slowest pipeline %.3fs", r.Campaign.TTCSec, maxTTC)
	}
	if r.Campaign.TTCSec >= sumTTC {
		return fmt.Errorf("multipilot: campaign TTC %.1fs not overlapping pipelines (serialized sum %.1fs)",
			r.Campaign.TTCSec, sumTTC)
	}
	return nil
}

// SimColumns returns the simulated-quantity rows (wall-clock zeroed)
// plus the pilot utilization rows for cross-engine parity assertions.
func (r *MultiPilotResult) SimColumns() ([]Stress100kMixedRow, []MultiPilotUtilRow) {
	out := append([]Stress100kMixedRow(nil), r.Pipelines...)
	c := r.Campaign
	c.WallMS = 0
	c.UnitsPerSecWall = 0
	out = append(out, c)
	return out, append([]MultiPilotUtilRow(nil), r.Pilots...)
}
