package workload

import (
	"fmt"

	"entk/internal/core"
	"entk/internal/stats"
)

// Fig3Row is one bar group of Figure 3: one pattern at one tasks=cores
// configuration of the character-count application on Comet.
type Fig3Row struct {
	Pattern         string
	Tasks           int // files created/counted (per stage)
	Cores           int
	ExecSec         float64 // application execution time
	CoreOverheadSec float64 // EnTK core overhead (constant)
	PatternOverhead float64 // EnTK pattern overhead (grows with tasks)
	TTCSec          float64
}

// Fig3Result holds the full sweep.
type Fig3Result struct {
	Rows []Fig3Row
}

// charCountPattern builds the two-stage mkfile/ccount application for one
// pattern type with n concurrent tasks per stage.
func charCountPattern(pattern string, n int) core.Pattern {
	mkfile := func() *core.Kernel {
		return &core.Kernel{Name: "misc.mkfile", Params: map[string]float64{"size_mb": 10}}
	}
	ccount := func() *core.Kernel {
		return &core.Kernel{Name: "misc.ccount", Params: map[string]float64{"size_mb": 10}}
	}
	switch pattern {
	case "pipeline":
		return &core.EnsembleOfPipelines{
			Pipelines: n,
			Stages:    2,
			StageKernel: func(stage, pipe int) *core.Kernel {
				if stage == 1 {
					return mkfile()
				}
				return ccount()
			},
		}
	case "sal":
		return &core.SimulationAnalysisLoop{
			Iterations:       1,
			Simulations:      n,
			Analyses:         n,
			SimulationKernel: func(it, i int) *core.Kernel { return mkfile() },
			AnalysisKernel:   func(it, i int) *core.Kernel { return ccount() },
		}
	case "ee":
		// Two cycles carry the two stages; the exchange step between them
		// is a negligible synthetic task, so all three patterns run the
		// same 2n-task workload.
		return &core.EnsembleExchange{
			Replicas: n,
			Cycles:   2,
			SimulationKernel: func(cycle, r int) *core.Kernel {
				if cycle == 1 {
					return mkfile()
				}
				return ccount()
			},
			ExchangeKernel: func(cycle int) *core.Kernel {
				return &core.Kernel{Name: "misc.sleep", Params: map[string]float64{"seconds": 0.1}}
			},
		}
	default:
		panic("unknown pattern " + pattern)
	}
}

// Fig3Patterns lists the pattern labels in figure order.
var Fig3Patterns = []string{"pipeline", "sal", "ee"}

// Fig3 characterises the three execution patterns with the mkfile/ccount
// application on Comet, varying tasks and cores together (1:1) over sizes
// (default 24-192).
func Fig3(sizes []int) (*Fig3Result, error) {
	if sizes == nil {
		sizes = Fig3Sizes
	}
	res := &Fig3Result{}
	for _, pattern := range Fig3Patterns {
		for _, n := range sizes {
			pattern, n := pattern, n
			rep, err := runOnFreshClock("xsede.comet", n, func() core.Pattern {
				return charCountPattern(pattern, n)
			})
			if err != nil {
				return nil, fmt.Errorf("fig3 %s n=%d: %w", pattern, n, err)
			}
			res.Rows = append(res.Rows, Fig3Row{
				Pattern:         pattern,
				Tasks:           n,
				Cores:           n,
				ExecSec:         rep.ExecTime().Seconds(),
				CoreOverheadSec: rep.CoreOverhead.Seconds(),
				PatternOverhead: rep.PatternOverhead.Seconds(),
				TTCSec:          rep.TTC.Seconds(),
			})
		}
	}
	return res, nil
}

// byPattern filters rows for one pattern label.
func (r *Fig3Result) byPattern(p string) []Fig3Row {
	var out []Fig3Row
	for _, row := range r.Rows {
		if row.Pattern == p {
			out = append(out, row)
		}
	}
	return out
}

// Table renders the figure's data.
func (r *Fig3Result) Table() string {
	headers := []string{"pattern", "tasks", "cores", "exec_s", "core_ovh_s", "pattern_ovh_s", "ttc_s"}
	var rows [][]string
	for _, w := range r.Rows {
		rows = append(rows, []string{
			w.Pattern, di(w.Tasks), di(w.Cores),
			f2(w.ExecSec), f2(w.CoreOverheadSec), f2(w.PatternOverhead), f2(w.TTCSec),
		})
	}
	return table(headers, rows)
}

// Check asserts the paper's qualitative findings: (1) execution times are
// similar across patterns and configurations, (2) core overhead is
// constant, (3) pattern overhead grows with the task count.
func (r *Fig3Result) Check() error {
	if len(r.Rows) == 0 {
		return fmt.Errorf("fig3: no rows")
	}
	// (1) Execution time flat across all rows: every task executes
	// concurrently with the same workload.
	var execs []float64
	for _, w := range r.Rows {
		execs = append(execs, w.ExecSec)
	}
	if spread, err := stats.RelSpread(execs); err != nil || spread > 0.5 {
		return fmt.Errorf("fig3: execution times not similar across patterns: spread=%.2f err=%v", spread, err)
	}
	// (2) Core overhead constant.
	var coreOvh []float64
	for _, w := range r.Rows {
		coreOvh = append(coreOvh, w.CoreOverheadSec)
	}
	if spread, err := stats.RelSpread(coreOvh); err != nil || spread > 0.2 {
		return fmt.Errorf("fig3: core overhead not constant: spread=%.2f err=%v", spread, err)
	}
	// (3) Pattern overhead grows ~linearly with tasks for each pattern.
	for _, p := range Fig3Patterns {
		rows := r.byPattern(p)
		var x, y []float64
		for _, w := range rows {
			x = append(x, float64(w.Tasks))
			y = append(y, w.PatternOverhead)
		}
		slope, _, r2, err := stats.LinearFit(x, y)
		if err != nil {
			return fmt.Errorf("fig3 %s: %v", p, err)
		}
		if slope <= 0 || r2 < 0.95 {
			return fmt.Errorf("fig3 %s: pattern overhead not linear in tasks (slope=%.4f r2=%.3f)", p, slope, r2)
		}
	}
	return nil
}
