//go:build race

package workload

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
