package workload

import (
	"fmt"
	"math"
	"time"

	"entk/internal/cluster"
	"entk/internal/core"
	"entk/internal/pilot"
	"entk/internal/vclock"
)

// The fault tier is the robustness PR's acceptance scenario: the same
// ~100k-task ensemble campaign run twice on a two-pilot set — once
// clean, once with one pilot killed mid-wave and its in-flight units
// rebound onto the survivor — and the recovery overhead read off as the
// TTC difference. Exact accounting must hold in both runs: rebinding
// returns units instead of failing them, so the faulted campaign
// completes every task with zero retries, just later.

// FaultTierPlan describes one fault-recovery benchmark: a two-pilot set
// (identical pilots on Machine) running a single Width x Depth ensemble
// of 1-core tasks, with pilot 1 killed ExecOffset into wave 1's
// execution.
type FaultTierPlan struct {
	Machine    string
	PilotCores int
	Width      int // tasks per stage
	Depth      int // stages
	Seconds    float64
	// ExecOffset is how far into wave-1 execution the kill lands; it must
	// stay inside (0, Seconds) for the fault to interrupt running units.
	ExecOffset time.Duration
}

// FaultTierDefault is the full tier: 98304 tasks on two 32768-core
// pilots of the 100k-tier machine, the doomed pilot carrying ~half the
// first wave when it dies.
var FaultTierDefault = FaultTierPlan{
	Machine: Stress100kMachine, PilotCores: 32768,
	Width: 49152, Depth: 2, Seconds: 30,
	ExecOffset: 15 * time.Second,
}

// FaultTierSmoke is the shape-identical CI smoke plan: 3072 tasks on two
// 1024-core pilots of the 10k-tier machine.
var FaultTierSmoke = FaultTierPlan{
	Machine: StressMachine, PilotCores: 1024,
	Width: 1536, Depth: 2, Seconds: 30,
	ExecOffset: 15 * time.Second,
}

// Tasks returns the planned task count.
func (p *FaultTierPlan) Tasks() int { return p.Width * p.Depth }

// killInstant derives the fault instant from the cluster model: pilot
// activation (queue wait + agent boot) plus the bulk wave's client-side
// submission cost plus ExecOffset, nudged by 1ns off any model-derived
// event instant (same-instant wake order is engine-dependent).
func (p *FaultTierPlan) killInstant() (time.Duration, error) {
	m, err := cluster.Lookup(p.Machine)
	if err != nil {
		return 0, err
	}
	nodes := (p.PilotCores + m.CoresPerNode - 1) / m.CoresPerNode
	activation := m.QueueWaitBase + time.Duration(nodes)*m.QueueWaitPerNode + m.AgentBootTime
	submit := time.Duration(p.Width) * pilot.DefaultConfig().UMSubmitPerUnit
	return activation + submit + p.ExecOffset + time.Nanosecond, nil
}

// FaultRunRow is one run's (clean or faulted) campaign outcome.
type FaultRunRow struct {
	Name       string  `json:"name"`
	Tasks      int     `json:"tasks"`
	Retries    int     `json:"retries"`
	TTCSec     float64 `json:"ttc_s"`
	WallMS     float64 `json:"wall_ms"`
	// PilotUnits is units per pilot, set order (doomed pilot last).
	PilotUnits []int `json:"pilot_units"`
}

// FaultTierResult pairs the clean and faulted runs of one plan.
type FaultTierResult struct {
	Plan      FaultTierPlan
	KillAtSec float64
	Clean     FaultRunRow
	Faulted   FaultRunRow
	// RecoveryOverheadSec is the faulted run's TTC minus the clean run's:
	// the price of losing half the fleet mid-wave.
	RecoveryOverheadSec float64
}

// FaultTier runs the fault-recovery pair on the default engine.
func FaultTier(p *FaultTierPlan) (*FaultTierResult, error) {
	return FaultTierOn(p, DefaultEngine)
}

// FaultTierOn is FaultTier on an explicit vclock engine.
func FaultTierOn(p *FaultTierPlan, eng vclock.Engine) (*FaultTierResult, error) {
	if p == nil {
		p = &FaultTierDefault
	}
	killAt, err := p.killInstant()
	if err != nil {
		return nil, err
	}

	run := func(name string, faults *pilot.FaultPlan) (FaultRunRow, error) {
		v := vclock.NewVirtualEngine(eng)
		rcfg := pilot.DefaultConfig()
		rcfg.ProfLayout = DefaultProfLayout
		rcfg.PendingRef = DefaultPendingRef
		rs, err := core.NewResourceSet([]core.PilotSpec{
			{Resource: p.Machine, Cores: p.PilotCores, Walltime: 10000 * time.Hour},
			{Resource: p.Machine, Cores: p.PilotCores, Walltime: 10000 * time.Hour},
		}, core.Config{Clock: v, Exec: DefaultExec, Runtime: rcfg})
		if err != nil {
			return FaultRunRow{}, err
		}
		rs.Rebind = true
		rs.Faults = faults
		pls := buildMixedPipelines([]StressMixedPipeline{{
			Name: "ensemble", Width: p.Width, Depth: p.Depth, CoresPer: 1, Seconds: p.Seconds,
		}})
		t0 := time.Now()
		var camp *core.CampaignReport
		var runErr error
		v.Run(func() {
			if runErr = rs.Allocate(); runErr != nil {
				return
			}
			camp, runErr = core.NewAppManager(rs).Run(pls...)
			if derr := rs.Deallocate(); runErr == nil {
				runErr = derr
			}
		})
		if runErr != nil {
			return FaultRunRow{}, fmt.Errorf("fault tier %s run: %w", name, runErr)
		}
		row := FaultRunRow{
			Name:    name,
			Tasks:   camp.Campaign.Tasks,
			Retries: camp.Campaign.Retries,
			TTCSec:  camp.Campaign.TTC.Seconds(),
			WallMS:  float64(time.Since(t0)) / float64(time.Millisecond),
		}
		for _, u := range camp.Pilots {
			row.PilotUnits = append(row.PilotUnits, u.Units)
		}
		return row, nil
	}

	clean, err := run("clean", nil)
	if err != nil {
		return nil, err
	}
	faulted, err := run("faulted", &pilot.FaultPlan{Faults: []pilot.Fault{
		{At: killAt, Pilot: 1, Kind: pilot.FaultKillPilot},
	}})
	if err != nil {
		return nil, err
	}
	return &FaultTierResult{
		Plan:                *p,
		KillAtSec:           killAt.Seconds(),
		Clean:               clean,
		Faulted:             faulted,
		RecoveryOverheadSec: faulted.TTCSec - clean.TTCSec,
	}, nil
}

// Table renders the clean/faulted pair and the recovery overhead.
func (r *FaultTierResult) Table() string {
	headers := []string{"run", "tasks", "retries", "ttc_s", "pilot0_units", "pilot1_units", "wall_ms"}
	var rows [][]string
	for _, w := range []FaultRunRow{r.Clean, r.Faulted} {
		p0, p1 := "-", "-"
		if len(w.PilotUnits) == 2 {
			p0, p1 = di(w.PilotUnits[0]), di(w.PilotUnits[1])
		}
		rows = append(rows, []string{
			w.Name, di(w.Tasks), di(w.Retries), f1(w.TTCSec), p0, p1, f1(w.WallMS),
		})
	}
	out := table(headers, rows)
	out += fmt.Sprintf("pilot 1 killed at %.1fs (mid wave 1); recovery overhead %.1fs\n",
		r.KillAtSec, r.RecoveryOverheadSec)
	return out
}

// Check asserts the tier's golden shapes:
//
//   - exact accounting in both runs: every planned task completed, with
//     zero retries — rebinding returns displaced units, it never burns
//     the retry budget;
//   - the work moved: in the faulted run every unit is still counted
//     exactly once across the pilot rows, the survivor carried the
//     majority, and the doomed pilot ran strictly less than its clean
//     share;
//   - the recovery overhead is one to two extra waves of the task
//     runtime (the displaced re-execution plus the survivor running
//     later stages alone), never free and never runaway.
func (r *FaultTierResult) Check() error {
	want := r.Plan.Tasks()
	for _, w := range []FaultRunRow{r.Clean, r.Faulted} {
		if w.Tasks != want || w.Retries != 0 {
			return fmt.Errorf("fault tier: %s run tasks/retries = %d/%d, want %d/0",
				w.Name, w.Tasks, w.Retries, want)
		}
		if len(w.PilotUnits) != 2 {
			return fmt.Errorf("fault tier: %s run has %d pilot rows, want 2", w.Name, len(w.PilotUnits))
		}
		if sum := w.PilotUnits[0] + w.PilotUnits[1]; sum != want {
			return fmt.Errorf("fault tier: %s run pilot units %d+%d = %d, want %d (units lost or double-counted)",
				w.Name, w.PilotUnits[0], w.PilotUnits[1], sum, want)
		}
	}
	if r.Faulted.PilotUnits[0] <= r.Faulted.PilotUnits[1] {
		return fmt.Errorf("fault tier: survivor ran %d units vs doomed pilot's %d — rebinding did not shift the work",
			r.Faulted.PilotUnits[0], r.Faulted.PilotUnits[1])
	}
	if r.Faulted.PilotUnits[1] >= r.Clean.PilotUnits[1] {
		return fmt.Errorf("fault tier: doomed pilot ran %d units, clean share was %d — the kill changed nothing",
			r.Faulted.PilotUnits[1], r.Clean.PilotUnits[1])
	}
	const slack = 10.0
	lo, hi := r.Plan.Seconds, 2*r.Plan.Seconds+slack
	if r.RecoveryOverheadSec < lo || r.RecoveryOverheadSec > hi {
		return fmt.Errorf("fault tier: recovery overhead %.1fs outside [%.0fs, %.0fs] (clean %.1fs, faulted %.1fs)",
			r.RecoveryOverheadSec, lo, hi, r.Clean.TTCSec, r.Faulted.TTCSec)
	}
	if math.Abs(r.Faulted.TTCSec-(r.Clean.TTCSec+r.RecoveryOverheadSec)) > 1e-9 {
		return fmt.Errorf("fault tier: overhead column inconsistent with the TTCs")
	}
	return nil
}
