package entk

import (
	"sort"

	"entk/internal/cluster"
)

// Machine re-exports the platform model so applications can register
// custom resources.
type Machine = cluster.Machine

// resourceNames returns the sorted registered machine labels.
func resourceNames() []string {
	names := cluster.Names()
	sort.Strings(names)
	return names
}

// RegisterResource installs a custom machine definition.
func RegisterResource(m *Machine) error { return cluster.Register(m) }

// LookupResource returns the machine registered under name.
func LookupResource(name string) (*Machine, error) { return cluster.Lookup(name) }
